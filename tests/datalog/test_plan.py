"""Unit tests for compiled hash-join plans (repro.datalog.plan)."""

from repro.datalog.engine import DatalogEngine, compiled_engine, materialize
from repro.datalog.index import FactStore
from repro.datalog.plan import (
    JoinPlanStats,
    PlanVariant,
    RulePlan,
    compiled_body_plan,
)
from repro.datalog.program import DatalogProgram
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_program
from repro.logic.rules import Rule
from repro.logic.terms import Constant, Variable

Edge = Predicate("Edge", 2)
Reach = Predicate("Reach", 2)
R = Predicate("R", 2)
S = Predicate("S", 1)
T = Predicate("T", 3)
x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def closure_rule() -> Rule:
    return Rule((Reach(x, y), Edge(y, z)), Reach(x, z))


class TestAtomOrdering:
    def test_pivot_runs_first(self):
        variant = PlanVariant(closure_rule().body, pivot=1)
        assert variant.order[0] == 1

    def test_pivot_connected_atom_follows(self):
        # after Edge(y, z), Reach(x, y) joins on the bound y
        variant = PlanVariant(closure_rule().body, pivot=1)
        assert variant.order == (1, 0)
        probe = variant.steps[1]
        assert probe.key_positions == (1,)  # position of ?y in Reach(x, y)
        assert probe.key_sources == (("var", y),)

    def test_constant_heavy_atom_scans_first_without_pivot(self):
        body = (R(x, y), R(a, x))
        variant = PlanVariant(body, pivot=None)
        assert variant.order[0] == 1  # R(a, ?x) is the more selective scan

    def test_ordering_is_deterministic_on_ties(self):
        body = (S(x), S(y))
        assert PlanVariant(body, pivot=None).order == (0, 1)

    def test_disconnected_atom_ordered_last(self):
        body = (S(z), R(x, y), Edge(y, z))
        variant = PlanVariant(body, pivot=1)
        # after R(x,y): Edge shares y; S(z) only joins after Edge binds z
        assert variant.order == (1, 2, 0)


class TestKeySelection:
    def test_constants_become_key_positions(self):
        variant = PlanVariant((R(a, y),), pivot=None)
        step = variant.steps[0]
        assert step.key_positions == (0,)
        assert step.key_sources == (("const", a),)

    def test_bound_variable_repeated_widens_the_key(self):
        # T(y, y, z) after Edge(y, z): both occurrences of the bound y and
        # the bound z are key columns — nothing is left to post-check
        variant = PlanVariant((Edge(y, z), T(y, y, z)), pivot=0)
        step = variant.steps[1]
        assert step.key_positions == (0, 1, 2)
        assert step.checks == ()

    def test_repeated_new_variable_becomes_check(self):
        variant = PlanVariant((R(x, x),), pivot=None)
        step = variant.steps[0]
        assert step.key_positions == ()
        assert step.checks == ((1, 0),)
        assert step.outputs == ((x, 0),)

    def test_new_variables_become_outputs(self):
        variant = PlanVariant(closure_rule().body, pivot=1)
        scan, probe = variant.steps
        assert scan.outputs == ((y, 0), (z, 1))
        assert probe.outputs == ((x, 0),)


class TestShortCircuits:
    def test_empty_delta_short_circuit(self):
        variant = PlanVariant(closure_rule().body, pivot=1)
        store = FactStore([Reach(a, b), Edge(b, c)])
        stats = JoinPlanStats()
        batch = variant.execute(store, {}, stats)  # no Edge facts in delta
        assert batch.size == 0
        assert stats.empty_delta_short_circuits == 1
        assert stats.batches == 0  # the store was never probed

    def test_empty_relation_short_circuit(self):
        variant = PlanVariant(closure_rule().body, pivot=1)
        store = FactStore([Edge(a, b)])  # no Reach facts at all
        stats = JoinPlanStats()
        delta = {Edge: [store.find_fact(Edge(a, b))[1]]}
        batch = variant.execute(store, delta, stats)
        assert batch.size == 0
        assert stats.empty_relation_short_circuits == 1
        assert stats.batches == 0

    def test_non_empty_execution_counts_batches(self):
        variant = PlanVariant(closure_rule().body, pivot=1)
        store = FactStore([Reach(a, b), Edge(b, c)])
        stats = JoinPlanStats()
        delta = {Edge: [store.find_fact(Edge(b, c))[1]]}
        batch = variant.execute(store, delta, stats)
        assert batch.size == 1
        # batch columns carry term IDs; decode at the boundary
        assert store.terms.decode_column(batch.columns[x]) == [a]
        assert store.terms.decode_column(batch.columns[z]) == [c]
        assert stats.batches == 2
        assert stats.rows_emitted == 1


class TestBatchesAreColumnar:
    def test_columns_are_per_variable_lists(self):
        variant = PlanVariant((Edge(x, y),), pivot=None)
        store = FactStore([Edge(a, b), Edge(a, c)])
        batch = variant.execute(store, None, JoinPlanStats())
        assert batch.size == 2
        assert set(batch.columns) == {x, y}
        assert sorted(store.terms.decode_column(batch.columns[y]), key=str) == [b, c]


class TestRulePlan:
    def test_variants_are_cached(self):
        plan = RulePlan(closure_rule())
        assert plan.variant(0) is plan.variant(0)
        assert plan.compiled_variant_count == 1
        plan.variant(None)
        assert plan.compiled_variant_count == 2

    def test_head_projection_with_constants(self):
        rule = Rule((S(x),), R(x, a))
        plan = RulePlan(rule)
        store = FactStore([S(b)])
        batch = plan.variant(None).execute(store, None, JoinPlanStats())
        assert list(plan.project_head(batch, store)) == [R(b, a)]

    def test_shape_mentions_scan_and_keyed_join(self):
        plan = RulePlan(closure_rule())
        shape = plan.shape()
        assert "scan" in shape and "[k1]" in shape


class TestKeyIndexMaintenance:
    def test_index_is_updated_incrementally(self):
        store = FactStore([Edge(a, b)])
        index = store.key_index(Edge, (0,))
        a_id = store.terms.lookup(a)
        assert [store.decode_row(Edge, row) for row in index[a_id]] == [Edge(a, b)]
        store.add(Edge(a, c))
        assert {store.decode_row(Edge, row) for row in index[a_id]} == {
            Edge(a, b),
            Edge(a, c),
        }

    def test_multi_column_keys_are_tuples(self):
        store = FactStore([T(a, b, c)])
        index = store.key_index(T, (0, 2))
        key = (store.terms.lookup(a), store.terms.lookup(c))
        assert [store.decode_row(T, row) for row in index[key]] == [T(a, b, c)]


class TestEngineCache:
    def test_same_program_shares_one_engine(self):
        program = parse_program("Edge(?x, ?y) -> Reach(?x, ?y).")
        datalog = DatalogProgram(program.tgds)
        assert compiled_engine(datalog) is compiled_engine(DatalogProgram(program.tgds))

    def test_engine_join_stats_accumulate(self):
        program = parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.join_stats["rows_emitted"] >= result.derived_count
        engine = compiled_engine(DatalogProgram(program.tgds))
        assert engine.join_stats.rows_emitted >= result.join_stats["rows_emitted"]
        assert engine.compiled_plan_count() >= 1
        assert engine.plan_shapes()


class TestQueryPlanCache:
    def test_compiled_body_plan_is_cached(self):
        body = (Edge(x, y),)
        assert compiled_body_plan(body) is compiled_body_plan(body)


class TestFunctionTermQueries:
    """Bodies with non-ground function terms fall back to unification."""

    def _skolem(self):
        from repro.logic.terms import FunctionSymbol

        return FunctionSymbol("f", 1)

    def test_body_supports_plan_detection(self):
        from repro.datalog.plan import body_supports_plan

        f = self._skolem()
        P = Predicate("P", 1)
        assert body_supports_plan((P(a), P(x)))
        assert body_supports_plan((P(f(a)),))  # ground skolem term = constant
        assert not body_supports_plan((P(f(x)),))

    def test_query_with_non_ground_function_term_unifies(self):
        from repro.datalog.query import ConjunctiveQuery, evaluate_query

        f = self._skolem()
        P = Predicate("P", 1)
        store = FactStore([P(f(a)), P(b)])
        answers = evaluate_query(ConjunctiveQuery((x,), (P(f(x)),)), store)
        assert answers == {(a,)}

    def test_boolean_query_with_ground_function_term(self):
        from repro.datalog.query import boolean_query_holds

        f = self._skolem()
        P = Predicate("P", 1)
        store = FactStore([P(f(a))])
        assert boolean_query_holds((P(f(a)),), store)
        assert not boolean_query_holds((P(f(b)),), store)
