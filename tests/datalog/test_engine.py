"""Unit tests for semi-naive Datalog materialization."""

from repro.datalog.engine import DatalogEngine, materialize
from repro.datalog.program import DatalogProgram
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_program, parse_tgds
from repro.logic.terms import Constant

Reach = Predicate("Reach", 2)
Node = Predicate("Node", 1)
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestTransitiveClosure:
    def _closure_program(self):
        return parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c). Edge(c, d).
            """
        )

    def test_full_closure_is_computed(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        expected_pairs = {
            (a, b), (a, c), (a, d), (b, c), (b, d), (c, d),
        }
        reach_facts = {f for f in result.facts() if f.predicate == Reach}
        assert {(f.args[0], f.args[1]) for f in reach_facts} == expected_pairs

    def test_base_facts_are_retained(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert Predicate("Edge", 2)(a, b) in result

    def test_statistics_are_reported(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 6
        assert result.rounds >= 3
        assert result.rule_applications >= 6

    def test_max_rounds_truncates(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance, max_rounds=1)
        assert Reach(a, d) not in result

    def test_len_and_contains(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert len(result) == 3 + 6
        assert Reach(a, d) in result


class TestEngineBehaviour:
    def test_empty_program_returns_input(self):
        program = DatalogProgram([])
        result = DatalogEngine(program).materialize([Reach(a, b)])
        assert result.facts() == {Reach(a, b)}
        assert result.derived_count == 0

    def test_no_duplicate_derivations(self):
        program = parse_program(
            """
            A(?x) -> B(?x).
            C(?x) -> B(?x).
            A(a). C(a).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 1

    def test_constants_in_rule_heads(self):
        program = parse_program(
            """
            Trigger(?x) -> Alarm(central).
            Trigger(t1).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Alarm", 1)(Constant("central")) in result

    def test_constants_in_rule_bodies_filter_matches(self):
        program = parse_program(
            """
            R(a, ?y) -> Hit(?y).
            R(a, b). R(c, d).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Hit", 1)(b) in result
        assert Predicate("Hit", 1)(d) not in result

    def test_repeated_variables_in_body(self):
        program = parse_program(
            """
            R(?x, ?x) -> Diag(?x).
            R(a, a). R(a, b).
            """
        )
        result = materialize(program.tgds, program.instance)
        diag = Predicate("Diag", 1)
        assert diag(a) in result
        assert diag(b) not in result

    def test_mutual_recursion(self):
        program = parse_program(
            """
            Even(?x), Next(?x, ?y) -> Odd(?y).
            Odd(?x), Next(?x, ?y) -> Even(?y).
            Even(n0). Next(n0, n1). Next(n1, n2). Next(n2, n3).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Odd", 1)(Constant("n3")) in result
        assert Predicate("Even", 1)(Constant("n2")) in result

    def test_rewriting_fixpoint_matches_oracle(self, running):
        """Materializing the HypDR rewriting reproduces the oracle answers."""
        from repro.chase import certain_base_facts
        from repro.rewriting import rewrite

        tgds, instance = running
        rewriting = rewrite(tgds, algorithm="hypdr")
        result = materialize(rewriting.program(), instance)
        base_facts = {f for f in result.facts() if f.is_base_fact}
        assert base_facts == certain_base_facts(instance, tgds)


class TestSemiNaiveBookkeeping:
    """Regression tests for the engine's round/derivation accounting."""

    def _chain_program(self, length: int):
        rules = "\n".join(
            f"P{index}(?x) -> P{index + 1}(?x)." for index in range(length)
        )
        return parse_program(rules + "\nP0(a).")

    def test_rounds_track_derivation_depth(self):
        # A length-4 chain needs exactly four semi-naive rounds: each round
        # derives the single fact enabling the next rule.
        program = self._chain_program(4)
        result = materialize(program.tgds, program.instance)
        assert result.rounds == 4
        assert result.derived_count == 4

    def test_rounds_zero_when_nothing_fires(self):
        program = parse_program(
            """
            A(?x) -> B(?x).
            C(c).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.rounds == 0
        assert result.derived_count == 0
        assert len(result) == 1

    def test_max_rounds_truncates_at_exact_depth(self):
        program = self._chain_program(4)
        p = lambda i: Predicate(f"P{i}", 1)
        for cap in range(1, 5):
            result = materialize(program.tgds, program.instance, max_rounds=cap)
            assert result.rounds == cap
            assert result.derived_count == cap
            assert p(cap)(a) in result
            if cap < 4:
                assert p(cap + 1)(a) not in result

    def test_max_rounds_larger_than_fixpoint_is_harmless(self):
        program = self._chain_program(3)
        capped = materialize(program.tgds, program.instance, max_rounds=50)
        uncapped = materialize(program.tgds, program.instance)
        assert capped.facts() == uncapped.facts()
        assert capped.rounds == uncapped.rounds == 3

    def test_derived_count_is_new_facts_only(self):
        # deriving a fact that is already in the base instance counts nothing
        program = parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Edge(a, b). Reach(a, b).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 0
        assert len(result) == 2

    def test_derived_count_matches_store_growth(self):
        program = self._closure_or_none()
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == len(result) - len(program.instance)

    def _closure_or_none(self):
        return parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c). Edge(c, d).
            """
        )
