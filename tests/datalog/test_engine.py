"""Unit tests for semi-naive Datalog materialization."""

from repro.datalog.engine import DatalogEngine, materialize
from repro.datalog.program import DatalogProgram
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_facts, parse_program, parse_tgds
from repro.logic.terms import Constant

Reach = Predicate("Reach", 2)
Node = Predicate("Node", 1)
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestTransitiveClosure:
    def _closure_program(self):
        return parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c). Edge(c, d).
            """
        )

    def test_full_closure_is_computed(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        expected_pairs = {
            (a, b), (a, c), (a, d), (b, c), (b, d), (c, d),
        }
        reach_facts = {f for f in result.facts() if f.predicate == Reach}
        assert {(f.args[0], f.args[1]) for f in reach_facts} == expected_pairs

    def test_base_facts_are_retained(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert Predicate("Edge", 2)(a, b) in result

    def test_statistics_are_reported(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 6
        assert result.rounds >= 3
        assert result.rule_applications >= 6

    def test_max_rounds_truncates(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance, max_rounds=1)
        assert Reach(a, d) not in result

    def test_len_and_contains(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert len(result) == 3 + 6
        assert Reach(a, d) in result


class TestEngineBehaviour:
    def test_empty_program_returns_input(self):
        program = DatalogProgram([])
        result = DatalogEngine(program).materialize([Reach(a, b)])
        assert result.facts() == {Reach(a, b)}
        assert result.derived_count == 0

    def test_no_duplicate_derivations(self):
        program = parse_program(
            """
            A(?x) -> B(?x).
            C(?x) -> B(?x).
            A(a). C(a).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 1

    def test_constants_in_rule_heads(self):
        program = parse_program(
            """
            Trigger(?x) -> Alarm(central).
            Trigger(t1).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Alarm", 1)(Constant("central")) in result

    def test_constants_in_rule_bodies_filter_matches(self):
        program = parse_program(
            """
            R(a, ?y) -> Hit(?y).
            R(a, b). R(c, d).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Hit", 1)(b) in result
        assert Predicate("Hit", 1)(d) not in result

    def test_repeated_variables_in_body(self):
        program = parse_program(
            """
            R(?x, ?x) -> Diag(?x).
            R(a, a). R(a, b).
            """
        )
        result = materialize(program.tgds, program.instance)
        diag = Predicate("Diag", 1)
        assert diag(a) in result
        assert diag(b) not in result

    def test_mutual_recursion(self):
        program = parse_program(
            """
            Even(?x), Next(?x, ?y) -> Odd(?y).
            Odd(?x), Next(?x, ?y) -> Even(?y).
            Even(n0). Next(n0, n1). Next(n1, n2). Next(n2, n3).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Odd", 1)(Constant("n3")) in result
        assert Predicate("Even", 1)(Constant("n2")) in result

    def test_rewriting_fixpoint_matches_oracle(self, running):
        """Materializing the HypDR rewriting reproduces the oracle answers."""
        from repro.chase import certain_base_facts
        from repro.rewriting import rewrite

        tgds, instance = running
        rewriting = rewrite(tgds, algorithm="hypdr")
        result = materialize(rewriting.program(), instance)
        base_facts = {f for f in result.facts() if f.is_base_fact}
        assert base_facts == certain_base_facts(instance, tgds)


class TestSemiNaiveBookkeeping:
    """Regression tests for the engine's round/derivation accounting."""

    def _chain_program(self, length: int):
        rules = "\n".join(
            f"P{index}(?x) -> P{index + 1}(?x)." for index in range(length)
        )
        return parse_program(rules + "\nP0(a).")

    def test_rounds_track_derivation_depth(self):
        # A length-4 chain needs exactly four semi-naive rounds: each round
        # derives the single fact enabling the next rule.
        program = self._chain_program(4)
        result = materialize(program.tgds, program.instance)
        assert result.rounds == 4
        assert result.derived_count == 4

    def test_rounds_zero_when_nothing_fires(self):
        program = parse_program(
            """
            A(?x) -> B(?x).
            C(c).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.rounds == 0
        assert result.derived_count == 0
        assert len(result) == 1

    def test_max_rounds_truncates_at_exact_depth(self):
        program = self._chain_program(4)
        p = lambda i: Predicate(f"P{i}", 1)
        for cap in range(1, 5):
            result = materialize(program.tgds, program.instance, max_rounds=cap)
            assert result.rounds == cap
            assert result.derived_count == cap
            assert p(cap)(a) in result
            if cap < 4:
                assert p(cap + 1)(a) not in result

    def test_max_rounds_larger_than_fixpoint_is_harmless(self):
        program = self._chain_program(3)
        capped = materialize(program.tgds, program.instance, max_rounds=50)
        uncapped = materialize(program.tgds, program.instance)
        assert capped.facts() == uncapped.facts()
        assert capped.rounds == uncapped.rounds == 3

    def test_derived_count_is_new_facts_only(self):
        # deriving a fact that is already in the base instance counts nothing
        program = parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Edge(a, b). Reach(a, b).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 0
        assert len(result) == 2

    def test_derived_count_matches_store_growth(self):
        program = self._closure_or_none()
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == len(result) - len(program.instance)

    def _closure_or_none(self):
        return parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c). Edge(c, d).
            """
        )


CLOSURE_RULES = """
Edge(?x, ?y) -> Reach(?x, ?y).
Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
"""


class TestRetraction:
    """DRed (delete/re-derive) through the compiled join plans."""

    def _closure_engine(self, facts):
        program = parse_program(CLOSURE_RULES + facts)
        engine = DatalogEngine(DatalogProgram(program.tgds))
        result = engine.materialize(program.instance)
        return engine, result.store

    def _surviving_rebuild(self, store):
        """The retraction contract's reference point: re-materialize the base."""
        program = parse_program(CLOSURE_RULES)
        return materialize(DatalogProgram(program.tgds), store.base_facts()).facts()

    def test_chain_retraction_unwinds_consequences(self):
        engine, store = self._closure_engine("Edge(a, b). Edge(b, c). Edge(c, d).")
        result = engine.retract(store, parse_facts("Edge(b, c)."))
        assert result.retracted_facts == 1
        assert result.net_removed > 1  # the edge plus downstream Reach facts
        assert Reach(a, b) in store
        assert Reach(b, c) not in store
        assert Reach(a, d) not in store
        assert store.facts() == self._surviving_rebuild(store)

    def test_diamond_rederives_the_surviving_path(self):
        # two routes from a to d; deleting one must keep Reach(a, d)
        engine, store = self._closure_engine(
            "Edge(a, b). Edge(b, d). Edge(a, c). Edge(c, d)."
        )
        result = engine.retract(store, parse_facts("Edge(b, d)."))
        assert Reach(a, d) in store
        assert Reach(b, d) not in store
        assert result.rederived >= 1
        assert store.facts() == self._surviving_rebuild(store)

    def test_cycle_retraction_breaks_spurious_support(self):
        # the classic DRed trap: facts in a derivation cycle support each
        # other, so naive counting would never remove them
        engine, store = self._closure_engine("Edge(a, b). Edge(b, a). Edge(b, c).")
        engine.retract(store, parse_facts("Edge(b, a)."))
        assert Reach(b, a) not in store
        assert Reach(a, a) not in store
        assert Reach(a, c) in store
        assert store.facts() == self._surviving_rebuild(store)

    def test_retracting_still_derivable_fact_demotes_it(self):
        program = parse_program(
            "Edge(?x, ?y) -> Link(?x, ?y). Edge(a, b). Link(a, b)."
        )
        engine = DatalogEngine(DatalogProgram(program.tgds))
        store = engine.materialize(program.instance).store
        Link = Predicate("Link", 2)
        result = engine.retract(store, [Link(a, b)])
        # un-asserted but still entailed by Edge(a, b): stays, as derived
        assert result.retracted_facts == 1
        assert result.net_removed == 0
        assert Link(a, b) in store
        assert not store.is_base(Link(a, b))

    def test_never_added_and_derived_only_inputs_are_ignored(self):
        engine, store = self._closure_engine("Edge(a, b). Edge(b, c).")
        size_before = len(store)
        result = engine.retract(
            store, [Reach(a, c), Predicate("Edge", 2)(c, d), Node(a)]
        )
        assert result.retracted_facts == 0
        assert result.ignored_facts == 3
        assert result.net_removed == 0
        assert len(store) == size_before

    def test_retract_everything_empties_the_store(self):
        engine, store = self._closure_engine("Edge(a, b). Edge(b, c).")
        engine.retract(store, list(store.base_facts()))
        assert len(store) == 0
        assert store.base_count == 0

    def test_retraction_reports_join_stats(self):
        engine, store = self._closure_engine("Edge(a, b). Edge(b, c). Edge(c, d).")
        result = engine.retract(store, parse_facts("Edge(b, c)."))
        assert result.join_stats is not None
        assert result.join_stats.get("deletion_batches", 0) > 0

    def test_large_retraction_uses_batched_rederivation(self):
        # a long chain with a bypass edge: removing a middle edge over-deletes
        # far more than _REDERIVE_BATCH_THRESHOLD facts, steering the seed
        # computation through the set-at-a-time full-plan path
        names = [chr(ord("a") + i) for i in range(12)]
        edges = ". ".join(
            f"Edge({left}, {right})" for left, right in zip(names, names[1:])
        )
        engine, store = self._closure_engine(f"{edges}. Edge(a, f).")
        result = engine.retract(store, parse_facts("Edge(c, d)."))
        assert result.overdeleted > DatalogEngine._REDERIVE_BATCH_THRESHOLD
        assert result.rederived >= 1  # the a-f bypass re-proves a* reachability
        assert store.facts() == self._surviving_rebuild(store)
