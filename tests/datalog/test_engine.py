"""Unit tests for semi-naive Datalog materialization."""

from repro.datalog.engine import DatalogEngine, materialize
from repro.datalog.program import DatalogProgram
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_program, parse_tgds
from repro.logic.terms import Constant

Reach = Predicate("Reach", 2)
Node = Predicate("Node", 1)
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestTransitiveClosure:
    def _closure_program(self):
        return parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c). Edge(c, d).
            """
        )

    def test_full_closure_is_computed(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        expected_pairs = {
            (a, b), (a, c), (a, d), (b, c), (b, d), (c, d),
        }
        reach_facts = {f for f in result.facts() if f.predicate == Reach}
        assert {(f.args[0], f.args[1]) for f in reach_facts} == expected_pairs

    def test_base_facts_are_retained(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert Predicate("Edge", 2)(a, b) in result

    def test_statistics_are_reported(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 6
        assert result.rounds >= 3
        assert result.rule_applications >= 6

    def test_max_rounds_truncates(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance, max_rounds=1)
        assert Reach(a, d) not in result

    def test_len_and_contains(self):
        program = self._closure_program()
        result = materialize(program.tgds, program.instance)
        assert len(result) == 3 + 6
        assert Reach(a, d) in result


class TestEngineBehaviour:
    def test_empty_program_returns_input(self):
        program = DatalogProgram([])
        result = DatalogEngine(program).materialize([Reach(a, b)])
        assert result.facts() == {Reach(a, b)}
        assert result.derived_count == 0

    def test_no_duplicate_derivations(self):
        program = parse_program(
            """
            A(?x) -> B(?x).
            C(?x) -> B(?x).
            A(a). C(a).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert result.derived_count == 1

    def test_constants_in_rule_heads(self):
        program = parse_program(
            """
            Trigger(?x) -> Alarm(central).
            Trigger(t1).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Alarm", 1)(Constant("central")) in result

    def test_constants_in_rule_bodies_filter_matches(self):
        program = parse_program(
            """
            R(a, ?y) -> Hit(?y).
            R(a, b). R(c, d).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Hit", 1)(b) in result
        assert Predicate("Hit", 1)(d) not in result

    def test_repeated_variables_in_body(self):
        program = parse_program(
            """
            R(?x, ?x) -> Diag(?x).
            R(a, a). R(a, b).
            """
        )
        result = materialize(program.tgds, program.instance)
        diag = Predicate("Diag", 1)
        assert diag(a) in result
        assert diag(b) not in result

    def test_mutual_recursion(self):
        program = parse_program(
            """
            Even(?x), Next(?x, ?y) -> Odd(?y).
            Odd(?x), Next(?x, ?y) -> Even(?y).
            Even(n0). Next(n0, n1). Next(n1, n2). Next(n2, n3).
            """
        )
        result = materialize(program.tgds, program.instance)
        assert Predicate("Odd", 1)(Constant("n3")) in result
        assert Predicate("Even", 1)(Constant("n2")) in result

    def test_rewriting_fixpoint_matches_oracle(self, running):
        """Materializing the HypDR rewriting reproduces the oracle answers."""
        from repro.chase import certain_base_facts
        from repro.rewriting import rewrite

        tgds, instance = running
        rewriting = rewrite(tgds, algorithm="hypdr")
        result = materialize(rewriting.program(), instance)
        base_facts = {f for f in result.facts() if f.is_base_fact}
        assert base_facts == certain_base_facts(instance, tgds)
