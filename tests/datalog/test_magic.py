"""Tests for the magic-sets demand transformation (repro.datalog.magic)."""

import pytest

from repro.datalog import DatalogProgram, materialize
from repro.datalog.magic import (
    MagicProgram,
    atom_adornment,
    clear_transform_cache,
    demand_answer,
    magic_transform,
    query_goals,
    query_has_bound_arguments,
)
from repro.datalog.query import evaluate_query, parse_query
from repro.logic.atoms import Atom, Predicate
from repro.logic.parser import parse_facts, parse_program
from repro.logic.rules import Rule
from repro.logic.terms import Constant, Variable

CLOSURE = """
Edge(?x, ?y) -> Reach(?x, ?y).
Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
"""


def closure_program():
    return DatalogProgram(parse_program(CLOSURE).tgds)


def assert_demand_matches_materialized(program, facts, query_text):
    query = parse_query(query_text)
    expected = evaluate_query(query, materialize(program, facts).store)
    result = demand_answer(program, tuple(facts), query)
    assert result.answers == expected
    return result


class TestAdornments:
    def test_atom_adornment_marks_ground_positions(self):
        assert atom_adornment(parse_query("Reach(a, ?y)").body[0]) == "bf"
        assert atom_adornment(parse_query("Reach(?x, ?y)").body[0]) == "ff"
        assert atom_adornment(parse_query("Reach(a, b)").body[0]) == "bb"

    def test_query_has_bound_arguments(self):
        assert query_has_bound_arguments(parse_query("Reach(a, ?y)"))
        assert query_has_bound_arguments(parse_query("Edge(?x, ?y), Reach(a, ?y)"))
        assert not query_has_bound_arguments(parse_query("Reach(?x, ?y)"))

    def test_query_goals_cover_idb_atoms_only(self):
        program = closure_program()
        goals = query_goals(program, parse_query("Reach(a, ?y), Edge(?y, ?z)"))
        assert goals == ((Predicate("Reach", 2), "bf"),)

    def test_duplicate_goals_deduplicate(self):
        program = closure_program()
        goals = query_goals(program, parse_query("Reach(a, ?y), Reach(b, ?y)"))
        assert goals == ((Predicate("Reach", 2), "bf"),)


class TestTransformStructure:
    def test_bound_goal_gets_magic_guard_and_copy_rule(self):
        program = closure_program()
        goal = (Predicate("Reach", 2), "bf")
        transformed = magic_transform(program, [goal])
        assert isinstance(transformed, MagicProgram)
        adorned = transformed.adorned_predicates[goal]
        magic = transformed.magic_predicates[goal]
        assert adorned.name == "Reach__bf" and adorned.arity == 2
        assert magic.name == "magic__Reach__bf" and magic.arity == 1
        # one adorned rule per original Reach rule, one copy rule for the goal
        assert transformed.adorned_rule_count == 2
        assert transformed.copy_rule_count == 1
        # every adorned/copy rule of a bound goal is guarded by the magic atom
        for rule in transformed.program.rules:
            if rule.head.predicate is adorned:
                assert rule.body[0].predicate is magic

    def test_linear_recursion_has_no_tautological_magic_rule(self):
        # Reach(?x,?y), Edge(?y,?z) -> Reach(?x,?z) under Reach^bf demands
        # Reach^bf(?x) — already the rule's own guard, so no magic rule
        program = closure_program()
        transformed = magic_transform(program, [(Predicate("Reach", 2), "bf")])
        assert transformed.magic_rule_count == 0
        for rule in transformed.program.rules:
            assert tuple(rule.body) != (rule.head,)

    def test_all_free_goal_has_no_magic_predicate(self):
        program = closure_program()
        goal = (Predicate("Reach", 2), "ff")
        transformed = magic_transform(program, [goal])
        assert transformed.magic_predicates[goal] is None
        assert transformed.seed_facts(parse_query("Reach(?x, ?y)")) == ()

    def test_seed_facts_are_the_query_constants(self):
        program = closure_program()
        transformed = magic_transform(program, [(Predicate("Reach", 2), "bf")])
        seeds = transformed.seed_facts(parse_query("Reach(a, ?y)"))
        magic = transformed.magic_predicates[(Predicate("Reach", 2), "bf")]
        assert seeds == (Atom(magic, (Constant("a"),)),)

    def test_rewrite_query_swaps_idb_atoms_only(self):
        program = closure_program()
        query = parse_query("Reach(a, ?y), Edge(?y, ?z)")
        transformed = magic_transform(program, query_goals(program, query))
        rewritten = transformed.rewrite_query(query)
        assert rewritten.body[0].predicate.name == "Reach__bf"
        assert rewritten.body[1].predicate == Predicate("Edge", 2)
        assert rewritten.answer_variables == query.answer_variables

    def test_fresh_names_avoid_collisions_with_program_predicates(self):
        x, y = Variable("x"), Variable("y")
        taken = Predicate("Reach__bf", 2)
        rules = [
            Rule((Atom(Predicate("Edge", 2), (x, y)),), Atom(Predicate("Reach", 2), (x, y))),
            Rule((Atom(Predicate("Reach", 2), (x, y)),), Atom(taken, (x, y))),
        ]
        program = DatalogProgram(rules)
        transformed = magic_transform(program, [(Predicate("Reach", 2), "bf")])
        adorned = transformed.adorned_predicates[(Predicate("Reach", 2), "bf")]
        assert adorned.name != "Reach__bf"
        assert adorned.name.startswith("Reach__bf")

    def test_transform_is_cached_per_program_and_goal_set(self):
        clear_transform_cache()
        program = closure_program()
        goal = (Predicate("Reach", 2), "bf")
        assert magic_transform(program, [goal]) is magic_transform(program, [goal])
        assert magic_transform(program, [goal]) is not magic_transform(
            program, [(Predicate("Reach", 2), "ff")]
        )


class TestDemandAnswersMatchMaterialized:
    FACTS = "Edge(a, b). Edge(b, c). Edge(c, d). Edge(e, f)."

    @pytest.mark.parametrize(
        "query_text",
        [
            "Reach(a, ?y)",  # bound first position
            "Reach(?x, c)",  # bound second position
            "Reach(a, c)",  # fully bound (boolean)
            "Reach(a, f)",  # fully bound, not entailed
            "Reach(?x, ?y)",  # zero-bound: degenerates to full reachability
            "Reach(a, ?y), Edge(?y, ?z)",  # join with an EDB atom
            "Reach(a, ?y), Reach(b, ?y)",  # two goals, shared adornment
            "Edge(?x, ?y)",  # EDB-only query: no goals at all
        ],
    )
    def test_agrees_on_transitive_closure(self, query_text):
        program = closure_program()
        facts = parse_facts(self.FACTS)
        assert_demand_matches_materialized(program, facts, query_text)

    def test_agrees_when_idb_facts_are_also_asserted(self):
        # Reach facts asserted directly must flow in through the copy rule
        program = closure_program()
        facts = parse_facts("Edge(a, b). Reach(z, a).")
        result = assert_demand_matches_materialized(program, facts, "Reach(z, ?y)")
        assert (Constant("b"),) in result.answers

    def test_static_seed_for_unconditionally_demanded_goal(self):
        # FromA's rule demands Reach(a, ?y) with nothing bound before it:
        # the demand has no prerequisites and becomes a ground seed fact
        program = DatalogProgram(
            parse_program(CLOSURE + "Reach(a, ?y) -> FromA(?y).").tgds
        )
        transformed = magic_transform(program, [(Predicate("FromA", 1), "f")])
        assert len(transformed.static_seeds) == 1
        assert transformed.static_seeds[0].args == (Constant("a"),)
        facts = parse_facts("Edge(a, b). Edge(b, c). Edge(d, e).")
        assert_demand_matches_materialized(program, facts, "FromA(?y)")

    def test_demand_restricts_the_derived_fixpoint(self):
        # demand from 'a' never explores the disconnected component, so the
        # only magic fact is the seed itself (linear recursion re-uses it)
        program = closure_program()
        facts = parse_facts("Edge(a, b). Edge(b, c). Edge(x1, x2). Edge(x2, x3).")
        result = assert_demand_matches_materialized(program, facts, "Reach(a, ?y)")
        assert result.report.magic_facts == 1
        assert result.report.predicates_touched <= result.report.predicates_total
        assert result.answers == {(Constant("b"),), (Constant("c"),)}

    def test_report_counts_the_transform_shape(self):
        program = closure_program()
        result = demand_answer(
            program, parse_facts("Edge(a, b)."), parse_query("Reach(a, ?y)")
        )
        report = result.report
        assert report.adorned_rules == 2
        assert report.copy_rules == 1
        assert report.magic_rules == 0
        assert report.rounds >= 1
        assert report.as_dict()["predicates_total"] == len(program.predicates())


class TestOntologySuiteDifferential:
    def test_demand_agrees_with_materialized_on_rewritten_ontologies(self):
        """Bound point queries over compiled suite rewritings agree both ways."""
        from repro.api import KnowledgeBase
        from repro.datalog.query import QueryOptions
        from repro.workloads.instances import generate_instance
        from repro.workloads.ontology_suite import generate_suite

        checked = 0
        for item in generate_suite(count=2, seed=7, min_axioms=6, max_axioms=14):
            kb = KnowledgeBase.compile(item.tgds)
            instance = tuple(
                generate_instance(
                    item.tgds, fact_count=60, constant_count=12, seed=3
                )
            )
            constants = sorted(
                {arg for fact in instance for arg in fact.args}, key=str
            )
            idb = sorted(
                (p for p in kb.program.idb_predicates() if p.arity >= 1),
                key=lambda p: (p.name, p.arity),
            )
            if not idb or not constants:
                continue
            warm = kb.session(instance)
            for index, pred in enumerate(idb[:4]):
                constant = constants[index % len(constants)]
                free = [f"?x{i}" for i in range(1, pred.arity)]
                query = parse_query(
                    f"{pred.name}({', '.join([str(constant)] + free)})"
                )
                cold = kb.session(instance, defer_materialization=True)
                demand = cold.answer(query, options=QueryOptions(strategy="demand"))
                assert cold.is_cold  # the demand path must not warm it
                assert demand == warm.answer(query)
                checked += 1
        assert checked > 0
