"""Unit tests for Datalog programs."""

import pytest

from repro.datalog.program import DatalogProgram, DatalogValidationError
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_tgd, parse_tgds
from repro.logic.rules import Rule
from repro.logic.terms import FunctionSymbol, Variable

A = Predicate("A", 1)
B = Predicate("B", 2)
x, y = Variable("x"), Variable("y")
f = FunctionSymbol("f", 1, is_skolem=True)


class TestConstruction:
    def test_accepts_rules_and_full_tgds(self):
        program = DatalogProgram([Rule((A(x),), A(x)), parse_tgd("A(?x) -> B(?x, ?x).")])
        assert len(program) == 2

    def test_rejects_non_full_tgds(self):
        with pytest.raises(DatalogValidationError):
            DatalogProgram([parse_tgd("A(?x) -> exists ?y. B(?x, ?y).")])

    def test_rejects_skolem_rules(self):
        with pytest.raises(DatalogValidationError):
            DatalogProgram([Rule((A(x),), B(x, f(x)))])

    def test_rejects_multi_head_tgds(self):
        with pytest.raises(DatalogValidationError):
            DatalogProgram([parse_tgd("A(?x) -> B(?x, ?x), A(?x).")])

    def test_deduplicates(self):
        rule = Rule((A(x),), B(x, x))
        assert len(DatalogProgram([rule, rule])) == 1

    def test_equality_ignores_order(self):
        first = Rule((A(x),), B(x, x))
        second = Rule((B(x, y),), A(x))
        assert DatalogProgram([first, second]) == DatalogProgram([second, first])


class TestStructure:
    def _program(self):
        return DatalogProgram(
            parse_tgds(
                """
                Edge(?x, ?y) -> Reach(?x, ?y).
                Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
                Reach(?x, ?y) -> Node(?x).
                """
            )
        )

    def test_predicates_and_split(self):
        program = self._program()
        names = {p.name for p in program.predicates()}
        assert names == {"Edge", "Reach", "Node"}
        assert {p.name for p in program.idb_predicates()} == {"Reach", "Node"}
        assert {p.name for p in program.edb_predicates()} == {"Edge"}

    def test_rules_by_head_and_body(self):
        program = self._program()
        reach = Predicate("Reach", 2)
        assert len(program.rules_by_head()[reach]) == 2
        assert len(program.rules_by_body_predicate()[reach]) == 2

    def test_dependency_graph_and_recursion(self):
        program = self._program()
        assert program.is_recursive()
        non_recursive = DatalogProgram(parse_tgds("A(?x) -> B(?x, ?x)."))
        assert not non_recursive.is_recursive()

    def test_max_body_atoms_and_width(self):
        program = self._program()
        assert program.max_body_atoms() == 2
        assert program.max_body_width() == 3

    def test_union(self):
        first = DatalogProgram(parse_tgds("A(?x) -> B(?x, ?x)."))
        second = DatalogProgram(parse_tgds("B(?x, ?y) -> A(?x)."))
        assert len(first.union(second)) == 2
