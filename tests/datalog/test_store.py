"""Tests for the ID-encoded columnar store (repro.datalog.store).

The hypothesis properties pin the store's observable behaviour to an
*object-encoded reference model* — plain sets of interned atoms, the
representation the store used before ID encoding — across arbitrary
add/retract interleavings, both at the store level (``add``/``remove``/base
bookkeeping) and through the DRed engine (``extend``/``retract``).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.engine import DatalogEngine, naive_reference_fixpoint
from repro.datalog.program import DatalogProgram
from repro.datalog.store import FactStore, TermTable, row_key
from repro.logic.atoms import Predicate
from repro.logic.rules import datalog_tgd_to_rule
from repro.logic.terms import Constant, Variable

from tests.properties.strategies import ground_atoms, guarded_tgd_sets

R = Predicate("R", 2)
S = Predicate("S", 1)
a, b, c = Constant("a"), Constant("b"), Constant("c")
x = Variable("x")

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestTermTable:
    def test_encode_is_dense_and_stable(self):
        table = TermTable()
        assert table.encode(a) == 0
        assert table.encode(b) == 1
        assert table.encode(a) == 0  # re-encoding returns the same ID
        assert len(table) == 2

    def test_lookup_never_issues_ids(self):
        table = TermTable()
        assert table.lookup(a) is None
        assert len(table) == 0
        table.encode(a)
        assert table.lookup(a) == 0

    def test_decode_round_trips(self):
        table = TermTable()
        ids = [table.encode(t) for t in (a, b, c)]
        assert table.decode_column(ids) == [a, b, c]
        assert table.decode_args(tuple(ids)) == (a, b, c)

    def test_copy_is_independent(self):
        table = TermTable()
        table.encode(a)
        clone = table.copy()
        clone.encode(b)
        assert len(table) == 1 and len(clone) == 2


class TestRowBoundary:
    def test_encode_fact_rejects_non_ground(self):
        import pytest

        store = FactStore()
        with pytest.raises(ValueError):
            store.encode_fact(R(a, x))

    def test_find_fact_is_lookup_only(self):
        store = FactStore([R(a, b)])
        terms_before = len(store.terms)
        assert store.find_fact(R(a, c)) is None  # c unknown: no ID issued
        assert len(store.terms) == terms_before
        predicate, row = store.find_fact(R(a, b))
        assert predicate is R and store.contains_row(predicate, row)

    def test_ids_survive_removal(self):
        """Removed rows must still decode — DRed re-derivation depends on it."""
        store = FactStore([R(a, b)])
        predicate, row = store.find_fact(R(a, b))
        store.remove(R(a, b))
        assert store.decode_row(predicate, row) == R(a, b)
        # re-adding the same fact reuses the same term IDs (append-only map)
        assert store.encode_fact(R(a, b)) == (predicate, row)

    def test_row_key_shapes(self):
        assert row_key((7, 8, 9), (1,)) == 8  # single column: bare int
        assert row_key((7, 8, 9), (0, 2)) == (7, 9)

    def test_stats_block_keys(self):
        store = FactStore([R(a, b), S(c)])
        store.key_index(R, (0,))
        stats = store.stats()
        for key in (
            "term_table_size",
            "rows",
            "relations",
            "key_indexes",
            "index_entries",
            "index_memory_bytes",
            "encode_calls",
            "decode_calls",
        ):
            assert key in stats, key
        assert stats["term_table_size"] == 3
        assert stats["rows"] == 2
        assert stats["key_indexes"] == 1
        assert stats["encode_calls"] >= 3


class _ReferenceStore:
    """The object-encoded model: interned-atom sets, no IDs anywhere."""

    def __init__(self):
        self.facts = set()
        self.base = set()

    def add(self, fact, base=False):
        added = fact not in self.facts
        self.facts.add(fact)
        if base:
            self.base.add(fact)
        return added

    def remove(self, fact):
        if fact not in self.facts:
            return False
        self.facts.discard(fact)
        self.base.discard(fact)
        return True

    def unmark_base(self, fact):
        had = fact in self.base
        self.base.discard(fact)
        return had


def _assert_store_equal(store: FactStore, reference: _ReferenceStore):
    assert store.facts() == frozenset(reference.facts)
    assert store.base_facts() == set(reference.base)
    assert len(store) == len(reference.facts)
    assert store.base_count == len(reference.base)
    by_predicate = {}
    for fact in reference.facts:
        by_predicate[fact.predicate] = by_predicate.get(fact.predicate, 0) + 1
    # both the old object store and the int store keep an emptied relation's
    # entry around at count 0; only the live counts must agree
    live = {pred: n for pred, n in store.counts_by_predicate().items() if n}
    assert live == by_predicate


class TestStoreEquivalenceProperties:
    @RELAXED
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "add_base", "remove", "unmark"]),
                ground_atoms(),
            ),
            max_size=30,
        )
    )
    def test_any_interleaving_matches_object_reference(self, operations):
        """Any add/retract interleaving leaves the int-encoded store equal
        to the object-encoded reference, including index-served lookups."""
        store = FactStore()
        reference = _ReferenceStore()
        for op, fact in operations:
            if op == "add":
                assert store.add(fact) == reference.add(fact)
            elif op == "add_base":
                store.add_all([fact], base=True)
                reference.add(fact, base=True)
            elif op == "remove":
                assert store.remove(fact) == reference.remove(fact)
            else:
                if fact in reference.facts:
                    assert store.unmark_base(fact) == reference.unmark_base(fact)
            _assert_store_equal(store, reference)
        # index-backed candidate retrieval agrees with a naive scan for
        # every bound probe over the final state
        for fact in set(reference.facts):
            probe = fact.predicate(fact.args[0], *[
                Variable(f"w{i}") for i in range(1, fact.predicate.arity)
            ])
            expected = {
                other
                for other in reference.facts
                if other.predicate is fact.predicate
                and other.args[0] == fact.args[0]
            }
            assert set(store.candidates(probe)) == expected

    @RELAXED
    @given(
        guarded_tgd_sets(max_size=4),
        st.lists(
            st.tuples(
                st.booleans(),  # True = extend, False = retract
                st.lists(ground_atoms(), min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_dred_interleaving_matches_rematerialization(self, tgds, batches):
        """After any extend/retract interleaving, the int store holds exactly
        the naive fixpoint of the surviving base facts (the object-encoded
        executable spec)."""
        rules = [datalog_tgd_to_rule(tgd) for tgd in tgds if tgd.is_datalog_rule]
        if not rules:
            return
        engine = DatalogEngine(DatalogProgram(rules))
        store = engine.materialize(()).store
        asserted = set()
        for is_extend, batch in batches:
            if is_extend:
                engine.extend(store, batch)
                asserted.update(batch)
            else:
                engine.retract(store, batch)
                asserted.difference_update(batch)
            assert store.facts() == naive_reference_fixpoint(
                DatalogProgram(rules), asserted
            )
            assert store.base_facts() == asserted
