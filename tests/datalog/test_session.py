"""Tests for the incremental ReasoningSession."""

import pytest

from repro.datalog import DatalogProgram, ReasoningSession, materialize
from repro.datalog.query import parse_query
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_fact, parse_facts, parse_program

CLOSURE = """
Edge(?x, ?y) -> Reach(?x, ?y).
Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
"""


def _closure_session(facts="Edge(a, b). Edge(b, c)."):
    program = parse_program(CLOSURE)
    return ReasoningSession(program.tgds, parse_facts(facts))


class TestIncrementalCorrectness:
    def test_delta_matches_full_rematerialization(self):
        """add_facts reaches the same fixpoint as materializing from scratch."""
        program = parse_program(CLOSURE)
        base = parse_facts("Edge(a, b). Edge(b, c).")
        delta = parse_facts("Edge(c, d). Edge(d, e).")
        session = ReasoningSession(program.tgds, base)
        session.add_facts(delta)
        full = materialize(
            DatalogProgram(program.tgds), list(base) + list(delta)
        )
        assert session.facts() == full.facts()

    def test_many_small_deltas_match_one_big_one(self):
        program = parse_program(CLOSURE)
        facts = [parse_fact(f"Edge(n{i}, n{i + 1})") for i in range(8)]
        incremental = ReasoningSession(program.tgds)
        for fact in facts:
            incremental.add_fact(fact)
        batch = ReasoningSession(program.tgds, facts)
        assert incremental.facts() == batch.facts()

    def test_delta_closing_a_cycle(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        session.add_facts(parse_facts("Edge(c, a)."))
        reach = Predicate("Reach", 2)
        for source in "abc":
            for target in "abc":
                assert parse_fact(f"Reach({source}, {target})") in session

    def test_empty_session_then_facts(self):
        session = _closure_session(facts="")
        assert len(session) == 0
        update = session.add_facts(parse_facts("Edge(a, b)."))
        assert update.added_facts == 1
        assert update.derived_count == 1  # Reach(a, b)


class TestDeltaBookkeeping:
    def test_duplicate_facts_are_ignored(self):
        session = _closure_session()
        update = session.add_facts(parse_facts("Edge(a, b)."))
        assert update.added_facts == 0
        assert update.derived_count == 0
        assert update.rounds == 0

    def test_already_derived_facts_are_ignored(self):
        session = _closure_session()
        update = session.add_facts(parse_facts("Reach(a, c)."))
        assert update.added_facts == 0

    def test_update_counts_accumulate(self):
        session = _closure_session()
        before = len(session)
        update = session.add_facts(parse_facts("Edge(c, d)."))
        assert update.added_facts == 1
        # Reach(c, d), Reach(b, d), Reach(a, d)
        assert update.derived_count == 3
        assert update.total_new_facts == len(session) - before
        assert session.update_count == 1

    def test_derived_count_tracks_lifetime_inferences(self):
        session = _closure_session()
        initial = session.derived_count
        session.add_facts(parse_facts("Edge(c, d)."))
        assert session.derived_count == initial + 3


class TestQueryAnswering:
    def test_answer_reflects_latest_delta(self):
        session = _closure_session()
        query = parse_query("Reach(a, ?y)")
        assert len(session.answer(query)) == 2
        session.add_facts(parse_facts("Edge(c, d)."))
        assert len(session.answer(query)) == 3

    def test_answer_many_preserves_order(self):
        session = _closure_session()
        queries = [parse_query("Reach(a, ?y)"), parse_query("Edge(?x, ?y)")]
        answers = session.answer_many(queries)
        assert len(answers) == 2
        assert len(answers[0]) == 2
        assert len(answers[1]) == 2

    def test_entails_and_base_facts(self):
        session = _closure_session()
        assert session.entails(parse_fact("Reach(a, c)"))
        assert not session.entails(parse_fact("Reach(c, a)"))
        assert parse_fact("Edge(a, b)") in session.certain_base_facts()


class TestSnapshots:
    def test_snapshot_is_immune_to_later_updates(self):
        session = _closure_session()
        snapshot = session.snapshot()
        session.add_facts(parse_facts("Edge(c, d)."))
        assert parse_fact("Reach(a, d)") not in snapshot
        assert parse_fact("Reach(a, d)") in session

    def test_snapshot_reports_cumulative_statistics(self):
        session = _closure_session()
        session.add_facts(parse_facts("Edge(c, d)."))
        snapshot = session.snapshot()
        assert snapshot.derived_count == session.derived_count
        assert snapshot.facts() == session.facts()


class TestParseQuery:
    def test_variables_in_order_of_first_occurrence(self):
        query = parse_query("Reach(?y, ?x), Edge(?x, ?z).")
        assert [v.name for v in query.answer_variables] == ["y", "x", "z"]

    def test_ground_query_has_no_answer_variables(self):
        query = parse_query("Reach(a, b)")
        assert query.arity == 0

    def test_malformed_query_rejected(self):
        from repro.logic.parser import ParseError

        with pytest.raises(ParseError):
            parse_query("Reach(?x, ?y) extra")


class TestRetractionCorrectness:
    def test_retract_matches_full_rematerialization(self):
        session = _closure_session("Edge(a, b). Edge(b, c). Edge(c, d).")
        session.retract_facts(parse_facts("Edge(b, c)."))
        program = parse_program(CLOSURE)
        full = materialize(
            DatalogProgram(program.tgds), parse_facts("Edge(a, b). Edge(c, d).")
        )
        assert session.facts() == full.facts()

    def test_add_then_retract_round_trips(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        before = session.facts()
        delta = parse_facts("Edge(c, d). Edge(d, e).")
        session.add_facts(delta)
        session.retract_facts(delta)
        assert session.facts() == before

    def test_interleaved_churn_matches_rebuild(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        session.add_facts(parse_facts("Edge(c, d)."))
        session.retract_facts(parse_facts("Edge(a, b)."))
        session.add_facts(parse_facts("Edge(d, a)."))
        program = parse_program(CLOSURE)
        survivors = parse_facts("Edge(b, c). Edge(c, d). Edge(d, a).")
        full = materialize(DatalogProgram(program.tgds), survivors)
        assert session.facts() == full.facts()

    def test_retraction_contract_ignores_unretractable_inputs(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        result = session.retract_facts(
            parse_facts("Reach(a, c). Edge(x, y).")  # derived-only / never added
        )
        assert result.retracted_facts == 0
        assert result.ignored_facts == 2
        assert session.facts() == _closure_session("Edge(a, b). Edge(b, c).").facts()


class TestRetractionBookkeeping:
    def test_added_facts_counts_base_not_subtraction(self):
        # regression: duplicated inputs used to inflate the old
        # len(initial) - derived_count bookkeeping
        session = _closure_session("Edge(a, b). Edge(a, b). Edge(b, c).")
        assert session.added_facts == 2
        assert session.base_fact_count == 2

    def test_added_facts_with_already_derivable_inputs(self):
        # an input fact the rules also derive is still an accepted assertion
        program = parse_program(
            "Edge(?x, ?y) -> Link(?x, ?y)."
        )
        session = ReasoningSession(
            program.tgds, parse_facts("Edge(a, b). Link(a, b).")
        )
        assert session.added_facts == 2
        assert session.base_fact_count == 2
        # the rule re-proves the asserted Link fact, so nothing new is
        # derived and the store is exactly the two assertions
        assert len(session) == 2

    def test_counters_stay_consistent_after_retraction(self):
        # regression: the subtraction-based added_facts went stale (or
        # negative) once retraction shrank the store
        session = _closure_session("Edge(a, b). Edge(b, c). Edge(c, d).")
        added_before = session.added_facts
        session.retract_facts(parse_facts("Edge(b, c)."))
        assert session.added_facts == added_before  # lifetime counter
        assert session.retracted_facts == 1
        assert session.retraction_count == 1
        assert session.base_fact_count == 2
        assert session.added_facts >= 0
        assert len(session) == len(session.facts())

    def test_retract_fact_convenience_and_repr(self):
        session = _closure_session()
        session.retract_fact(parse_fact("Edge(b, c)."))
        assert session.retraction_count == 1
        assert "1 retractions" in repr(session)

    def test_snapshot_is_immune_to_later_retractions(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        snapshot = session.snapshot()
        session.retract_facts(parse_facts("Edge(a, b)."))
        assert parse_fact("Edge(a, b).") in snapshot.store.facts()

    def test_answers_reflect_retraction(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        query = parse_query("Reach(?x, c)")
        assert len(session.answer(query)) == 2
        session.retract_facts(parse_facts("Edge(a, b)."))
        assert len(session.answer(query)) == 1


def _cold_session(facts="Edge(a, b). Edge(b, c)."):
    program = parse_program(CLOSURE)
    return ReasoningSession(
        program.tgds, parse_facts(facts), defer_materialization=True
    )


class TestDeferredMaterialization:
    def test_cold_session_stays_cold_across_demand_answers(self):
        from repro.datalog import QueryOptions

        session = _cold_session()
        assert session.is_cold
        assert "cold" in repr(session)
        answers = session.answer(
            parse_query("Reach(a, ?y)"), options=QueryOptions(strategy="demand")
        )
        assert len(answers) == 2
        assert session.is_cold
        assert session.base_fact_count == 2  # countable without warming

    def test_materialized_paths_warm_permanently(self):
        for access in (
            # auto + zero-bound resolves to materialized even when cold
            lambda s: s.answer(parse_query("Reach(?x, ?y)")),
            lambda s: s.add_facts(parse_facts("Edge(c, d).")),
            lambda s: s.retract_facts(parse_facts("Edge(a, b).")),
            lambda s: s.snapshot(),
            lambda s: s.facts(),
            lambda s: s.entails(parse_fact("Edge(a, b)")),
            lambda s: s.store,
        ):
            session = _cold_session()
            access(session)
            assert not session.is_cold

    def test_eager_sessions_are_warm_from_construction(self):
        assert not _closure_session().is_cold

    def test_cold_and_warm_sessions_answer_identically(self):
        from repro.datalog import QueryOptions

        for text in ("Reach(a, ?y)", "Reach(?x, c)", "Reach(?x, ?y)"):
            query = parse_query(text)
            cold = _cold_session().answer(
                query, options=QueryOptions(strategy="demand")
            )
            assert cold == _closure_session().answer(query)


class TestStrategyResolution:
    def test_auto_is_demand_only_when_cold_and_bound(self):
        bound = parse_query("Reach(a, ?y)")
        free = parse_query("Reach(?x, ?y)")
        cold = _cold_session()
        assert cold.resolve_strategy(bound) == "demand"
        assert cold.resolve_strategy(free) == "materialized"
        warm = _closure_session()
        assert warm.resolve_strategy(bound) == "materialized"

    def test_explicit_strategies_are_respected(self):
        from repro.datalog import QueryOptions

        query = parse_query("Reach(a, ?y)")
        warm = _closure_session()
        assert (
            warm.resolve_strategy(query, QueryOptions(strategy="demand"))
            == "demand"
        )
        cold = _cold_session()
        assert (
            cold.resolve_strategy(query, QueryOptions(strategy="materialized"))
            == "materialized"
        )

    def test_answer_many_resolves_per_query_in_input_order(self):
        # the zero-bound query warms the session; the earlier bound query
        # must already have been answered demand-driven, the later one goes
        # materialized because the store now exists
        session = _cold_session()
        answers = session.answer_many(
            [
                parse_query("Reach(a, ?y)"),
                parse_query("Reach(?x, ?y)"),
                parse_query("Reach(b, ?y)"),
            ]
        )
        assert not session.is_cold
        assert session.demand_stats["queries"] == 1
        warm = _closure_session()
        assert answers == warm.answer_many(
            [
                parse_query("Reach(a, ?y)"),
                parse_query("Reach(?x, ?y)"),
                parse_query("Reach(b, ?y)"),
            ]
        )

    def test_demand_on_a_warm_mutated_session_sees_the_mutations(self):
        from repro.datalog import QueryOptions

        session = _closure_session("Edge(a, b). Edge(b, c).")
        session.add_facts(parse_facts("Edge(c, d)."))
        session.retract_facts(parse_facts("Edge(a, b)."))
        query = parse_query("Reach(b, ?y)")
        demand = session.answer(query, options=QueryOptions(strategy="demand"))
        assert demand == session.answer(query)  # materialized reference
        assert len(demand) == 2  # c and d

    def test_demand_stats_accumulate(self):
        from repro.datalog import QueryOptions

        session = _cold_session()
        assert session.demand_stats["queries"] == 0
        session.answer(
            parse_query("Reach(a, ?y)"), options=QueryOptions(strategy="demand")
        )
        session.answer(
            parse_query("Reach(b, ?y)"), options=QueryOptions(strategy="demand")
        )
        stats = session.demand_stats
        assert stats["queries"] == 2
        assert stats["magic_facts"] >= 2
        assert 0 < stats["predicates_touched"] <= stats["predicates_total"]

    def test_invalid_strategy_is_rejected_at_options_construction(self):
        from repro.datalog import QueryOptions

        with pytest.raises(ValueError, match="strategy"):
            QueryOptions(strategy="telepathy")
