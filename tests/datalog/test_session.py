"""Tests for the incremental ReasoningSession."""

import pytest

from repro.datalog import DatalogProgram, ReasoningSession, materialize
from repro.datalog.query import parse_query
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_fact, parse_facts, parse_program

CLOSURE = """
Edge(?x, ?y) -> Reach(?x, ?y).
Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
"""


def _closure_session(facts="Edge(a, b). Edge(b, c)."):
    program = parse_program(CLOSURE)
    return ReasoningSession(program.tgds, parse_facts(facts))


class TestIncrementalCorrectness:
    def test_delta_matches_full_rematerialization(self):
        """add_facts reaches the same fixpoint as materializing from scratch."""
        program = parse_program(CLOSURE)
        base = parse_facts("Edge(a, b). Edge(b, c).")
        delta = parse_facts("Edge(c, d). Edge(d, e).")
        session = ReasoningSession(program.tgds, base)
        session.add_facts(delta)
        full = materialize(
            DatalogProgram(program.tgds), list(base) + list(delta)
        )
        assert session.facts() == full.facts()

    def test_many_small_deltas_match_one_big_one(self):
        program = parse_program(CLOSURE)
        facts = [parse_fact(f"Edge(n{i}, n{i + 1})") for i in range(8)]
        incremental = ReasoningSession(program.tgds)
        for fact in facts:
            incremental.add_fact(fact)
        batch = ReasoningSession(program.tgds, facts)
        assert incremental.facts() == batch.facts()

    def test_delta_closing_a_cycle(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        session.add_facts(parse_facts("Edge(c, a)."))
        reach = Predicate("Reach", 2)
        for source in "abc":
            for target in "abc":
                assert parse_fact(f"Reach({source}, {target})") in session

    def test_empty_session_then_facts(self):
        session = _closure_session(facts="")
        assert len(session) == 0
        update = session.add_facts(parse_facts("Edge(a, b)."))
        assert update.added_facts == 1
        assert update.derived_count == 1  # Reach(a, b)


class TestDeltaBookkeeping:
    def test_duplicate_facts_are_ignored(self):
        session = _closure_session()
        update = session.add_facts(parse_facts("Edge(a, b)."))
        assert update.added_facts == 0
        assert update.derived_count == 0
        assert update.rounds == 0

    def test_already_derived_facts_are_ignored(self):
        session = _closure_session()
        update = session.add_facts(parse_facts("Reach(a, c)."))
        assert update.added_facts == 0

    def test_update_counts_accumulate(self):
        session = _closure_session()
        before = len(session)
        update = session.add_facts(parse_facts("Edge(c, d)."))
        assert update.added_facts == 1
        # Reach(c, d), Reach(b, d), Reach(a, d)
        assert update.derived_count == 3
        assert update.total_new_facts == len(session) - before
        assert session.update_count == 1

    def test_derived_count_tracks_lifetime_inferences(self):
        session = _closure_session()
        initial = session.derived_count
        session.add_facts(parse_facts("Edge(c, d)."))
        assert session.derived_count == initial + 3


class TestQueryAnswering:
    def test_answer_reflects_latest_delta(self):
        session = _closure_session()
        query = parse_query("Reach(a, ?y)")
        assert len(session.answer(query)) == 2
        session.add_facts(parse_facts("Edge(c, d)."))
        assert len(session.answer(query)) == 3

    def test_answer_many_preserves_order(self):
        session = _closure_session()
        queries = [parse_query("Reach(a, ?y)"), parse_query("Edge(?x, ?y)")]
        answers = session.answer_many(queries)
        assert len(answers) == 2
        assert len(answers[0]) == 2
        assert len(answers[1]) == 2

    def test_entails_and_base_facts(self):
        session = _closure_session()
        assert session.entails(parse_fact("Reach(a, c)"))
        assert not session.entails(parse_fact("Reach(c, a)"))
        assert parse_fact("Edge(a, b)") in session.certain_base_facts()


class TestSnapshots:
    def test_snapshot_is_immune_to_later_updates(self):
        session = _closure_session()
        snapshot = session.snapshot()
        session.add_facts(parse_facts("Edge(c, d)."))
        assert parse_fact("Reach(a, d)") not in snapshot
        assert parse_fact("Reach(a, d)") in session

    def test_snapshot_reports_cumulative_statistics(self):
        session = _closure_session()
        session.add_facts(parse_facts("Edge(c, d)."))
        snapshot = session.snapshot()
        assert snapshot.derived_count == session.derived_count
        assert snapshot.facts() == session.facts()


class TestParseQuery:
    def test_variables_in_order_of_first_occurrence(self):
        query = parse_query("Reach(?y, ?x), Edge(?x, ?z).")
        assert [v.name for v in query.answer_variables] == ["y", "x", "z"]

    def test_ground_query_has_no_answer_variables(self):
        query = parse_query("Reach(a, b)")
        assert query.arity == 0

    def test_malformed_query_rejected(self):
        from repro.logic.parser import ParseError

        with pytest.raises(ParseError):
            parse_query("Reach(?x, ?y) extra")
