"""Tests for the incremental ReasoningSession."""

import pytest

from repro.datalog import DatalogProgram, ReasoningSession, materialize
from repro.datalog.query import parse_query
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_fact, parse_facts, parse_program

CLOSURE = """
Edge(?x, ?y) -> Reach(?x, ?y).
Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
"""


def _closure_session(facts="Edge(a, b). Edge(b, c)."):
    program = parse_program(CLOSURE)
    return ReasoningSession(program.tgds, parse_facts(facts))


class TestIncrementalCorrectness:
    def test_delta_matches_full_rematerialization(self):
        """add_facts reaches the same fixpoint as materializing from scratch."""
        program = parse_program(CLOSURE)
        base = parse_facts("Edge(a, b). Edge(b, c).")
        delta = parse_facts("Edge(c, d). Edge(d, e).")
        session = ReasoningSession(program.tgds, base)
        session.add_facts(delta)
        full = materialize(
            DatalogProgram(program.tgds), list(base) + list(delta)
        )
        assert session.facts() == full.facts()

    def test_many_small_deltas_match_one_big_one(self):
        program = parse_program(CLOSURE)
        facts = [parse_fact(f"Edge(n{i}, n{i + 1})") for i in range(8)]
        incremental = ReasoningSession(program.tgds)
        for fact in facts:
            incremental.add_fact(fact)
        batch = ReasoningSession(program.tgds, facts)
        assert incremental.facts() == batch.facts()

    def test_delta_closing_a_cycle(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        session.add_facts(parse_facts("Edge(c, a)."))
        reach = Predicate("Reach", 2)
        for source in "abc":
            for target in "abc":
                assert parse_fact(f"Reach({source}, {target})") in session

    def test_empty_session_then_facts(self):
        session = _closure_session(facts="")
        assert len(session) == 0
        update = session.add_facts(parse_facts("Edge(a, b)."))
        assert update.added_facts == 1
        assert update.derived_count == 1  # Reach(a, b)


class TestDeltaBookkeeping:
    def test_duplicate_facts_are_ignored(self):
        session = _closure_session()
        update = session.add_facts(parse_facts("Edge(a, b)."))
        assert update.added_facts == 0
        assert update.derived_count == 0
        assert update.rounds == 0

    def test_already_derived_facts_are_ignored(self):
        session = _closure_session()
        update = session.add_facts(parse_facts("Reach(a, c)."))
        assert update.added_facts == 0

    def test_update_counts_accumulate(self):
        session = _closure_session()
        before = len(session)
        update = session.add_facts(parse_facts("Edge(c, d)."))
        assert update.added_facts == 1
        # Reach(c, d), Reach(b, d), Reach(a, d)
        assert update.derived_count == 3
        assert update.total_new_facts == len(session) - before
        assert session.update_count == 1

    def test_derived_count_tracks_lifetime_inferences(self):
        session = _closure_session()
        initial = session.derived_count
        session.add_facts(parse_facts("Edge(c, d)."))
        assert session.derived_count == initial + 3


class TestQueryAnswering:
    def test_answer_reflects_latest_delta(self):
        session = _closure_session()
        query = parse_query("Reach(a, ?y)")
        assert len(session.answer(query)) == 2
        session.add_facts(parse_facts("Edge(c, d)."))
        assert len(session.answer(query)) == 3

    def test_answer_many_preserves_order(self):
        session = _closure_session()
        queries = [parse_query("Reach(a, ?y)"), parse_query("Edge(?x, ?y)")]
        answers = session.answer_many(queries)
        assert len(answers) == 2
        assert len(answers[0]) == 2
        assert len(answers[1]) == 2

    def test_entails_and_base_facts(self):
        session = _closure_session()
        assert session.entails(parse_fact("Reach(a, c)"))
        assert not session.entails(parse_fact("Reach(c, a)"))
        assert parse_fact("Edge(a, b)") in session.certain_base_facts()


class TestSnapshots:
    def test_snapshot_is_immune_to_later_updates(self):
        session = _closure_session()
        snapshot = session.snapshot()
        session.add_facts(parse_facts("Edge(c, d)."))
        assert parse_fact("Reach(a, d)") not in snapshot
        assert parse_fact("Reach(a, d)") in session

    def test_snapshot_reports_cumulative_statistics(self):
        session = _closure_session()
        session.add_facts(parse_facts("Edge(c, d)."))
        snapshot = session.snapshot()
        assert snapshot.derived_count == session.derived_count
        assert snapshot.facts() == session.facts()


class TestParseQuery:
    def test_variables_in_order_of_first_occurrence(self):
        query = parse_query("Reach(?y, ?x), Edge(?x, ?z).")
        assert [v.name for v in query.answer_variables] == ["y", "x", "z"]

    def test_ground_query_has_no_answer_variables(self):
        query = parse_query("Reach(a, b)")
        assert query.arity == 0

    def test_malformed_query_rejected(self):
        from repro.logic.parser import ParseError

        with pytest.raises(ParseError):
            parse_query("Reach(?x, ?y) extra")


class TestRetractionCorrectness:
    def test_retract_matches_full_rematerialization(self):
        session = _closure_session("Edge(a, b). Edge(b, c). Edge(c, d).")
        session.retract_facts(parse_facts("Edge(b, c)."))
        program = parse_program(CLOSURE)
        full = materialize(
            DatalogProgram(program.tgds), parse_facts("Edge(a, b). Edge(c, d).")
        )
        assert session.facts() == full.facts()

    def test_add_then_retract_round_trips(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        before = session.facts()
        delta = parse_facts("Edge(c, d). Edge(d, e).")
        session.add_facts(delta)
        session.retract_facts(delta)
        assert session.facts() == before

    def test_interleaved_churn_matches_rebuild(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        session.add_facts(parse_facts("Edge(c, d)."))
        session.retract_facts(parse_facts("Edge(a, b)."))
        session.add_facts(parse_facts("Edge(d, a)."))
        program = parse_program(CLOSURE)
        survivors = parse_facts("Edge(b, c). Edge(c, d). Edge(d, a).")
        full = materialize(DatalogProgram(program.tgds), survivors)
        assert session.facts() == full.facts()

    def test_retraction_contract_ignores_unretractable_inputs(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        result = session.retract_facts(
            parse_facts("Reach(a, c). Edge(x, y).")  # derived-only / never added
        )
        assert result.retracted_facts == 0
        assert result.ignored_facts == 2
        assert session.facts() == _closure_session("Edge(a, b). Edge(b, c).").facts()


class TestRetractionBookkeeping:
    def test_added_facts_counts_base_not_subtraction(self):
        # regression: duplicated inputs used to inflate the old
        # len(initial) - derived_count bookkeeping
        session = _closure_session("Edge(a, b). Edge(a, b). Edge(b, c).")
        assert session.added_facts == 2
        assert session.base_fact_count == 2

    def test_added_facts_with_already_derivable_inputs(self):
        # an input fact the rules also derive is still an accepted assertion
        program = parse_program(
            "Edge(?x, ?y) -> Link(?x, ?y)."
        )
        session = ReasoningSession(
            program.tgds, parse_facts("Edge(a, b). Link(a, b).")
        )
        assert session.added_facts == 2
        assert session.base_fact_count == 2
        # the rule re-proves the asserted Link fact, so nothing new is
        # derived and the store is exactly the two assertions
        assert len(session) == 2

    def test_counters_stay_consistent_after_retraction(self):
        # regression: the subtraction-based added_facts went stale (or
        # negative) once retraction shrank the store
        session = _closure_session("Edge(a, b). Edge(b, c). Edge(c, d).")
        added_before = session.added_facts
        session.retract_facts(parse_facts("Edge(b, c)."))
        assert session.added_facts == added_before  # lifetime counter
        assert session.retracted_facts == 1
        assert session.retraction_count == 1
        assert session.base_fact_count == 2
        assert session.added_facts >= 0
        assert len(session) == len(session.facts())

    def test_retract_fact_convenience_and_repr(self):
        session = _closure_session()
        session.retract_fact(parse_fact("Edge(b, c)."))
        assert session.retraction_count == 1
        assert "1 retractions" in repr(session)

    def test_snapshot_is_immune_to_later_retractions(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        snapshot = session.snapshot()
        session.retract_facts(parse_facts("Edge(a, b)."))
        assert parse_fact("Edge(a, b).") in snapshot.store.facts()

    def test_answers_reflect_retraction(self):
        session = _closure_session("Edge(a, b). Edge(b, c).")
        query = parse_query("Reach(?x, c)")
        assert len(session.answer(query)) == 2
        session.retract_facts(parse_facts("Edge(a, b)."))
        assert len(session.answer(query)) == 1
