"""Unit tests for existential-free conjunctive query evaluation."""

import pytest

from repro.datalog.engine import materialize
from repro.datalog.index import FactStore
from repro.datalog.query import (
    ConjunctiveQuery,
    QueryValidationError,
    boolean_query_holds,
    evaluate_query,
)
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_program
from repro.logic.terms import Constant, Variable

R = Predicate("R", 2)
S = Predicate("S", 1)
a, b, c = Constant("a"), Constant("b"), Constant("c")
x, y = Variable("x"), Variable("y")


class TestValidation:
    def test_existential_variables_rejected(self):
        with pytest.raises(QueryValidationError):
            ConjunctiveQuery((x,), (R(x, y),))

    def test_answer_variables_must_occur_in_body(self):
        with pytest.raises(QueryValidationError):
            ConjunctiveQuery((x, y), (S(x),))

    def test_duplicate_answer_variables_rejected(self):
        with pytest.raises(QueryValidationError):
            ConjunctiveQuery((x, x), (R(x, x),))

    def test_valid_query(self):
        query = ConjunctiveQuery((x, y), (R(x, y),))
        assert query.arity == 2
        assert "ans" in str(query)


class TestEvaluation:
    def test_single_atom_query(self):
        store = FactStore([R(a, b), R(b, c)])
        query = ConjunctiveQuery((x, y), (R(x, y),))
        assert evaluate_query(query, store) == {(a, b), (b, c)}

    def test_join_query(self):
        store = FactStore([R(a, b), R(b, c), S(b)])
        query = ConjunctiveQuery((x, y), (R(x, y), S(y)))
        assert evaluate_query(query, store) == {(a, b)}

    def test_projection_via_answer_tuple_order(self):
        store = FactStore([R(a, b)])
        query = ConjunctiveQuery((y, x), (R(x, y),))
        assert evaluate_query(query, store) == {(b, a)}

    def test_query_over_materialization_result(self):
        program = parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c).
            """
        )
        result = materialize(program.tgds, program.instance)
        reach = Predicate("Reach", 2)
        query = ConjunctiveQuery((x,), (reach(x, c),))
        assert evaluate_query(query, result) == {(a,), (b,)}

    def test_query_over_plain_iterable(self):
        query = ConjunctiveQuery((x,), (S(x),))
        assert evaluate_query(query, [S(a), S(b)]) == {(a,), (b,)}

    def test_constants_in_query_body(self):
        store = FactStore([R(a, b), R(c, b)])
        query = ConjunctiveQuery((x,), (R(x, b),))
        assert evaluate_query(query, store) == {(a,), (c,)}

    def test_empty_answer(self):
        store = FactStore([R(a, b)])
        query = ConjunctiveQuery((x,), (S(x),))
        assert evaluate_query(query, store) == frozenset()


class TestBooleanQueries:
    def test_holds(self):
        store = FactStore([R(a, b), S(a)])
        assert boolean_query_holds((R(a, b), S(a)), store)

    def test_does_not_hold(self):
        store = FactStore([R(a, b)])
        assert not boolean_query_holds((R(b, a),), store)
