"""Tests for the cheap lookahead optimization (Section 6)."""

from repro.logic.atoms import Predicate
from repro.logic.parser import parse_tgds
from repro.logic.terms import FunctionSymbol, Variable
from repro.rewriting import RewritingSettings, rewrite
from repro.rewriting.lookahead import rule_result_is_dead_end, tgd_result_is_dead_end

A = Predicate("A", 1)
B = Predicate("B", 2)
x, y = Variable("x"), Variable("y")
f = FunctionSymbol("f", 1, is_skolem=True)


class TestTGDLookahead:
    def test_existential_head_atom_with_unused_relation_is_dead_end(self):
        atom = B(x, y)
        assert tgd_result_is_dead_end(atom, {y}, frozenset({A}))

    def test_relation_used_in_some_body_is_kept(self):
        atom = B(x, y)
        assert not tgd_result_is_dead_end(atom, {y}, frozenset({A, B}))

    def test_atom_without_existential_variables_is_kept(self):
        atom = B(x, x)
        assert not tgd_result_is_dead_end(atom, {y}, frozenset({A}))


class TestRuleLookahead:
    def test_skolem_head_with_unused_relation_is_dead_end(self):
        atom = B(x, f(x))
        assert rule_result_is_dead_end(atom, frozenset({A}))

    def test_function_free_head_is_kept(self):
        atom = B(x, x)
        assert not rule_result_is_dead_end(atom, frozenset({A}))

    def test_skolem_head_with_used_relation_is_kept(self):
        atom = B(x, f(x))
        assert not rule_result_is_dead_end(atom, frozenset({A, B}))


class TestEndToEndEffect:
    def _chain(self):
        # Final(x, y) never occurs in any body, so derivations producing it
        # inside a child vertex are useless
        return parse_tgds(
            """
            A(?x) -> exists ?y. B(?x, ?y).
            B(?x1, ?x2) -> Final(?x1, ?x2).
            B(?x1, ?x2) -> C(?x1).
            """
        )

    def test_lookahead_reduces_derivations(self):
        tgds = self._chain()
        with_lookahead = rewrite(
            tgds, algorithm="skdr", settings=RewritingSettings(use_lookahead=True)
        )
        without_lookahead = rewrite(
            tgds, algorithm="skdr", settings=RewritingSettings(use_lookahead=False)
        )
        assert (
            with_lookahead.statistics.derived
            <= without_lookahead.statistics.derived
        )

    def test_lookahead_preserves_answers(self):
        from repro.chase import certain_base_facts
        from repro.datalog import materialize
        from repro.logic.parser import parse_facts

        tgds = self._chain()
        instance = parse_facts("A(a). B(a, b).")
        expected = certain_base_facts(instance, tgds)
        for use_lookahead in (True, False):
            for algorithm in ("exbdr", "skdr", "hypdr"):
                result = rewrite(
                    tgds,
                    algorithm=algorithm,
                    settings=RewritingSettings(use_lookahead=use_lookahead),
                )
                facts = {
                    fact
                    for fact in materialize(result.program(), instance).facts()
                    if fact.is_base_fact
                }
                assert facts == expected, (algorithm, use_lookahead)
