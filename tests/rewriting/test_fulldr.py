"""Tests for the FullDR algorithm (Appendix E, Example E.3)."""

import pytest

from repro.chase import certain_base_facts
from repro.datalog import materialize
from repro.logic.parser import parse_facts
from repro.rewriting import RewritingSettings, rewrite
from repro.rewriting.fulldr import FullDR
from repro.rewriting.saturation import Saturation
from repro.workloads.families import fulldr_example_e3, running_example


class TestCorrectness:
    def test_running_example(self):
        tgds, instance = running_example()
        result = rewrite(tgds, algorithm="fulldr")
        facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts == certain_base_facts(instance, tgds)

    def test_only_full_tgds_are_derived(self):
        from repro.logic.normal_form import normalize_tgd

        tgds, _ = running_example()
        fulldr = FullDR()
        saturation = Saturation(fulldr)
        saturation.run(tgds)
        # the worked-off set stores clauses in canonical-variable form, so
        # compare against the normalized initial clauses
        initial = {normalize_tgd(tgd) for tgd in fulldr.initial_clauses(tgds)}
        derived = [
            clause for clause in saturation._worked_off if clause not in initial
        ]
        assert derived, "FullDR should derive new TGDs on the running example"
        assert all(clause.is_full for clause in derived)

    def test_cim_example(self, cim):
        tgds, instance = cim
        result = rewrite(tgds, algorithm="fulldr")
        facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts == certain_base_facts(instance, tgds)


class TestExampleE3:
    """Example E.3 is the paper's illustration of why FullDR is impractical:
    the COMPOSE variant enumerates thousands of bounded substitutions per
    premise pair.  Saturating the example to completion takes minutes even at
    this small size, so these tests run FullDR under a time budget and check
    the properties that are meaningful for a partial run (derivation blow-up
    and soundness); full completeness of FullDR is checked on the cheaper
    inputs above and in the differential tests."""

    def test_compose_enumerates_many_substitutions(self):
        """Within the same time budget FullDR performs far more derivations
        than HypDR needs to finish the example completely."""
        tgds = fulldr_example_e3()
        budget = RewritingSettings(timeout_seconds=10.0)
        fulldr_result = rewrite(tgds, algorithm="fulldr", settings=budget)
        hypdr_result = rewrite(tgds, algorithm="hypdr", settings=budget)
        assert hypdr_result.completed
        assert fulldr_result.statistics.derived > hypdr_result.statistics.derived
        # HypDR finishes the whole example in the time FullDR needs to grind
        # through a fraction of its substitution space
        assert hypdr_result.statistics.elapsed_seconds < fulldr_result.statistics.elapsed_seconds

    def test_fulldr_is_sound_on_e3(self):
        """Every fact derivable through the (possibly partial) FullDR output is
        certain; if the saturation finishes, the output is also complete."""
        tgds = fulldr_example_e3()
        instance = parse_facts("R(a, b). U(a). U(b).")
        expected = certain_base_facts(instance, tgds)
        result = rewrite(
            tgds, algorithm="fulldr", settings=RewritingSettings(timeout_seconds=15.0)
        )
        facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts <= expected
        if result.completed:
            assert facts == expected


class TestCostProfile:
    def test_fulldr_performs_more_inferences_than_exbdr(self):
        """The paper drops FullDR because it is not competitive; on the running
        example it already performs noticeably more derivations."""
        tgds, _ = running_example()
        fulldr_result = rewrite(tgds, algorithm="fulldr")
        exbdr_result = rewrite(tgds, algorithm="exbdr")
        assert (
            fulldr_result.statistics.derived
            > exbdr_result.statistics.derived
        )

    def test_substitution_cap_is_respected(self):
        fulldr = FullDR()
        fulldr.max_substitutions_per_pair = 10
        saturation = Saturation(fulldr)
        tgds, _ = running_example()
        result = saturation.run(tgds)
        assert result.datalog_rules is not None

    def test_timeout_marks_run_incomplete(self):
        tgds = fulldr_example_e3()
        settings = RewritingSettings(timeout_seconds=0.0)
        result = rewrite(tgds, algorithm="fulldr", settings=settings)
        assert not result.completed
        assert result.statistics.timed_out
