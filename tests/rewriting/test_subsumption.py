"""Unit tests for tautology detection and subsumption (Definition 5.1, Section 6)."""

from repro.logic.atoms import Predicate
from repro.logic.parser import parse_tgd
from repro.logic.rules import Rule
from repro.logic.terms import FunctionSymbol, Variable
from repro.rewriting.subsumption import (
    approximate_rule_subsumes,
    approximate_tgd_subsumes,
    exact_rule_subsumes,
    exact_tgd_subsumes,
    is_syntactic_tautology,
    subsumes,
)

A = Predicate("A", 2)
B = Predicate("B", 1)
B2 = Predicate("B", 2)
x1, x2, x3 = Variable("x1"), Variable("x2"), Variable("x3")
f = FunctionSymbol("f", 1, is_skolem=True)


class TestTautologies:
    def test_rule_tautology(self):
        rule = Rule((B(x1), A(x1, x1)), B(x1))
        assert is_syntactic_tautology(rule)

    def test_tgd_tautology(self):
        assert is_syntactic_tautology(parse_tgd("A(?x), B(?x) -> A(?x)."))

    def test_non_full_head_normal_tgd_is_never_a_tautology(self):
        # Example 5.2: each head atom contains an existential variable
        assert not is_syntactic_tautology(
            parse_tgd("A(?x, ?x) -> exists ?y. A(?x, ?y).")
        )


class TestExactRuleSubsumption:
    def test_example_5_2_rules(self):
        """τ2 = A(x2, x3) → B(x2) subsumes τ1 = A(f(x1), f(x1)) ∧ B(x1) → B(f(x1))."""
        tau1 = Rule((A(f(x1), f(x1)), B(x1)), B(f(x1)))
        tau2 = Rule((A(x2, x3),), B(x2))
        assert exact_rule_subsumes(tau2, tau1)
        assert not exact_rule_subsumes(tau1, tau2)

    def test_identical_rules_subsume_each_other(self):
        rule = Rule((A(x1, x2),), B(x1))
        assert exact_rule_subsumes(rule, rule)

    def test_head_must_match(self):
        general = Rule((A(x1, x2),), B(x1))
        other = Rule((A(x1, x2),), B(x2))
        assert not exact_rule_subsumes(general, other)

    def test_extra_body_atoms_in_subsumed_rule(self):
        general = Rule((A(x1, x2),), B(x1))
        specific = Rule((A(x1, x2), B(x2)), B(x1))
        assert exact_rule_subsumes(general, specific)
        assert not exact_rule_subsumes(specific, general)


class TestExactTGDSubsumption:
    def test_example_5_2_tgds(self):
        """τ4 subsumes τ3 by the substitution μ2 of Example 5.2."""
        tau3 = parse_tgd("A(?x1, ?x1), B(?x1) -> exists ?y1. C(?x1, ?y1).")
        tau4 = parse_tgd("A(?x2, ?x3) -> exists ?y2, ?y3. C(?x2, ?y2), D(?x3, ?y3).")
        assert exact_tgd_subsumes(tau4, tau3)
        assert not exact_tgd_subsumes(tau3, tau4)

    def test_existentials_must_map_injectively(self):
        # collapsing y2 and y3 onto the single y1 of the subsumed TGD is forbidden
        subsumer = parse_tgd("A(?x1, ?x1) -> exists ?y2, ?y3. C(?x1, ?y2), D(?x1, ?y3).")
        subsumed = parse_tgd("A(?x1, ?x1) -> exists ?y1. C(?x1, ?y1), D(?x1, ?y1).")
        assert not exact_tgd_subsumes(subsumer, subsumed)

    def test_existential_cannot_map_to_universal(self):
        subsumer = parse_tgd("A(?x1, ?x2) -> exists ?y. C(?x1, ?y).")
        subsumed = parse_tgd("A(?x1, ?x2) -> C(?x1, ?x2).")
        assert not exact_tgd_subsumes(subsumer, subsumed)

    def test_full_tgd_subsumption(self):
        general = parse_tgd("A(?x1, ?x2) -> B(?x1).")
        specific = parse_tgd("A(?x1, ?x1), B(?x1) -> B(?x1).")
        assert exact_tgd_subsumes(general, specific)


class TestApproximateChecks:
    def test_approximate_agrees_on_identical_normalized_forms(self):
        first = parse_tgd("A(?u, ?v) -> B(?u).")
        second = parse_tgd("A(?p, ?q) -> B(?p).")
        assert approximate_tgd_subsumes(first, second)
        assert approximate_tgd_subsumes(second, first)

    def test_approximate_detects_body_extension(self):
        general = parse_tgd("A(?x1, ?x2) -> B(?x1).")
        specific = parse_tgd("A(?x1, ?x2), C(?x2) -> B(?x1).")
        assert approximate_tgd_subsumes(general, specific)
        assert not approximate_tgd_subsumes(specific, general)

    def test_approximate_is_sound_but_incomplete(self):
        """The Example 5.2 subsumption needs variable merging, which the
        normalized check cannot see — it must answer "no" (keeping the TGD),
        never a wrong "yes"."""
        tau3 = parse_tgd("A(?x1, ?x1), B(?x1) -> exists ?y1. C(?x1, ?y1).")
        tau4 = parse_tgd("A(?x2, ?x3) -> exists ?y2, ?y3. C(?x2, ?y2), D(?x3, ?y3).")
        assert exact_tgd_subsumes(tau4, tau3)
        assert not approximate_tgd_subsumes(tau4, tau3)

    def test_approximate_implies_exact_on_random_pairs(self):
        """Soundness of the approximation: approximate ⇒ exact."""
        from repro.workloads.random_gtgds import RandomGTGDConfig, generate_random_gtgds

        for seed in range(12):
            tgds = generate_random_gtgds(RandomGTGDConfig(seed=seed, tgd_count=5))
            for left in tgds:
                for right in tgds:
                    if approximate_tgd_subsumes(left, right):
                        assert exact_tgd_subsumes(left, right)

    def test_approximate_rule_check(self):
        general = Rule((A(x1, x2),), B(x1))
        specific = Rule((A(x1, x2), B(x2)), B(x1))
        assert approximate_rule_subsumes(general, specific)
        assert not approximate_rule_subsumes(specific, general)


class TestDispatcher:
    def test_dispatch_on_types(self):
        tgd_general = parse_tgd("A(?x1, ?x2) -> B(?x1).")
        tgd_specific = parse_tgd("A(?x1, ?x2), C(?x1) -> B(?x1).")
        assert subsumes(tgd_general, tgd_specific)
        rule_general = Rule((A(x1, x2),), B(x1))
        rule_specific = Rule((A(x1, x2), B(x1)), B(x1))
        assert subsumes(rule_general, rule_specific, exact=True)

    def test_mixed_types_never_subsume(self):
        tgd = parse_tgd("A(?x1, ?x2) -> B(?x1).")
        rule = Rule((A(x1, x2),), B(x1))
        assert not subsumes(tgd, rule)
        assert not subsumes(rule, tgd)
