"""Tests for the ExbDR algorithm (Definition 5.5, Example 5.6, Proposition 5.7)."""

from repro.chase import certain_base_facts
from repro.datalog import materialize
from repro.logic.atoms import Predicate
from repro.logic.normal_form import normalize_tgd
from repro.logic.parser import parse_tgd, parse_tgds
from repro.logic.tgd import bwidth, head_normalize, hwidth
from repro.rewriting import RewritingSettings, rewrite
from repro.rewriting.exbdr import ExbDR
from repro.workloads.families import (
    exbdr_blowup_family,
    running_example,
    running_example_shortcuts,
    skdr_blowup_family,
)


def _shortcut_derived(result, shortcut_tgd) -> bool:
    """Check that some rule of the rewriting is the given shortcut (up to renaming)."""
    from repro.logic.rules import rule_to_datalog_tgd

    target = normalize_tgd(shortcut_tgd)
    for rule in result.datalog_rules:
        if normalize_tgd(rule_to_datalog_tgd(rule)) == target:
            return True
    return False


class TestExampleFiveSix:
    def test_all_shortcuts_of_example_4_6_are_derived(self):
        tgds, _ = running_example()
        result = rewrite(tgds, algorithm="exbdr")
        for shortcut in running_example_shortcuts():
            assert _shortcut_derived(result, shortcut), f"missing shortcut {shortcut}"

    def test_rewriting_contains_input_datalog_rules(self):
        tgds, _ = running_example()
        result = rewrite(tgds, algorithm="exbdr")
        for tgd in tgds:
            if tgd.is_datalog_rule:
                assert _shortcut_derived(result, tgd)

    def test_rewriting_is_correct_on_the_running_instance(self):
        tgds, instance = running_example()
        result = rewrite(tgds, algorithm="exbdr")
        base_facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert base_facts == certain_base_facts(instance, tgds)

    def test_rewriting_output_contains_only_datalog_rules(self):
        tgds, _ = running_example()
        result = rewrite(tgds, algorithm="exbdr")
        assert all(rule.is_datalog_rule for rule in result.datalog_rules)


class TestInferenceRuleProperties:
    def test_derived_tgds_respect_width_bounds(self):
        """Proposition 5.7(3): derived widths stay within the input widths."""
        tgds = parse_tgds(
            """
            A(?x1, ?x2) -> exists ?y. B(?x1, ?y), C(?x1, ?y).
            B(?x1, ?x2), C(?x1, ?x2) -> D(?x1, ?x2).
            D(?x1, ?x2) -> E(?x1).
            """
        )
        exbdr = ExbDR()
        exbdr.prepare(tgds)
        from repro.rewriting.saturation import Saturation

        saturation = Saturation(exbdr)
        saturation.run(tgds)
        input_bwidth = bwidth(head_normalize(tgds))
        input_hwidth = hwidth(head_normalize(tgds))
        for clause in saturation._worked_off:
            assert clause.body_width <= input_bwidth
            assert clause.head_width <= input_hwidth

    def test_no_inference_without_existential_contact(self):
        """A full TGD whose body shares no relation with non-full heads yields nothing new."""
        tgds = parse_tgds(
            """
            A(?x) -> exists ?y. B(?x, ?y).
            C(?x), D(?x) -> E(?x).
            """
        )
        result = rewrite(tgds, algorithm="exbdr")
        # only the input Datalog rule C, D -> E is in the rewriting
        assert result.output_size == 1

    def test_guard_participation_is_required(self):
        """Proposition 5.7(1): if the guard of τ' cannot match, nothing is derived."""
        tgds = parse_tgds(
            """
            A(?x) -> exists ?y. B(?x, ?y).
            C(?x1, ?x2), B(?x1, ?x2) -> E(?x1).
            """
        )
        result = rewrite(tgds, algorithm="exbdr")
        # the guard C(x1, x2) of the full TGD never matches a head atom of the
        # non-full TGD, so no shortcut involving A can exist
        predicates_in_bodies = {
            atom.predicate.name
            for rule in result.datalog_rules
            for atom in rule.body
        }
        assert "A" not in predicates_in_bodies


class TestBlowupFamilies:
    def test_proposition_5_14_exponential_family(self):
        """ExbDR derives one TGD per subset of {1..n} on the Σn of Prop. 5.14."""
        n = 4
        tgds = exbdr_blowup_family(n)
        exbdr = ExbDR(RewritingSettings(use_lookahead=False))
        from repro.rewriting.saturation import Saturation

        saturation = Saturation(exbdr)
        saturation.run(tgds)
        non_full = [clause for clause in saturation._worked_off if clause.is_non_full]
        # 2^n - 1 derived non-full TGDs plus the original one
        assert len(non_full) == 2 ** n

    def test_proposition_5_15_single_shortcut(self):
        """On the Σn of Prop. 5.15 ExbDR derives just A(x) → C(x)."""
        tgds = skdr_blowup_family(4)
        result = rewrite(tgds, algorithm="exbdr")
        shortcut = parse_tgd("A(?x) -> C(?x).")
        assert _shortcut_derived(result, shortcut)
        # output: the collecting rule plus the shortcut
        assert result.output_size == 2


class TestCorrectnessOnGeneratedInputs:
    def test_matches_oracle_on_random_inputs(self):
        from repro.workloads.random_gtgds import (
            RandomGTGDConfig,
            generate_random_gtgds,
            generate_random_instance,
        )

        for seed in range(8):
            config = RandomGTGDConfig(seed=seed, tgd_count=6, predicate_count=5)
            tgds = generate_random_gtgds(config)
            instance = generate_random_instance(tgds, seed=seed)
            expected = certain_base_facts(instance, tgds)
            result = rewrite(tgds, algorithm="exbdr")
            facts = {
                fact
                for fact in materialize(result.program(), instance).facts()
                if fact.is_base_fact
            }
            assert facts == expected, f"seed {seed}"
