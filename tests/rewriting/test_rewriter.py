"""Tests for the top-level rewrite() dispatcher and input validation."""

import pytest

from repro.logic.parser import parse_tgds
from repro.rewriting import (
    UnguardedTGDError,
    available_algorithms,
    make_inference,
    rewrite,
    rewrite_program,
    validate_guardedness,
)
from repro.rewriting.exbdr import ExbDR
from repro.rewriting.hypdr import HypDR
from repro.workloads.families import running_example


class TestDispatch:
    def test_available_algorithms(self):
        assert set(available_algorithms()) == {"exbdr", "skdr", "hypdr", "fulldr"}

    def test_make_inference(self):
        assert isinstance(make_inference("exbdr"), ExbDR)
        assert isinstance(make_inference("HypDR"), HypDR)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            make_inference("magic")
        tgds, _ = running_example()
        with pytest.raises(ValueError):
            rewrite(tgds, algorithm="magic")

    def test_default_algorithm_is_hypdr(self):
        tgds, _ = running_example()
        result = rewrite(tgds)
        assert result.algorithm == "HypDR"

    def test_rewrite_program_returns_datalog_program(self):
        from repro.datalog import DatalogProgram

        tgds, _ = running_example()
        program = rewrite_program(tgds, algorithm="skdr")
        assert isinstance(program, DatalogProgram)
        assert len(program) > 0


class TestValidation:
    def test_unguarded_input_rejected(self):
        tgds = parse_tgds("A(?x), B(?y) -> C(?x, ?y).")
        with pytest.raises(UnguardedTGDError):
            rewrite(tgds, algorithm="hypdr")

    def test_validate_guardedness_passes_through_guarded_sets(self):
        tgds, _ = running_example()
        assert validate_guardedness(tgds) == tuple(tgds)

    def test_empty_input_yields_empty_rewriting(self):
        for algorithm in available_algorithms():
            result = rewrite((), algorithm=algorithm)
            assert result.output_size == 0
            assert result.completed


class TestAlgorithmsAgree:
    def test_all_algorithms_produce_equivalent_rewritings(self):
        """Different algorithms may output different rules, but the rewritings
        must entail the same base facts on every base instance."""
        from repro.chase import certain_base_facts
        from repro.datalog import materialize
        from repro.workloads.random_gtgds import (
            RandomGTGDConfig,
            generate_random_gtgds,
            generate_random_instance,
        )

        for seed in (3, 11, 17):
            tgds = generate_random_gtgds(RandomGTGDConfig(seed=seed, tgd_count=6))
            instance = generate_random_instance(tgds, seed=seed)
            expected = certain_base_facts(instance, tgds)
            for algorithm in ("exbdr", "skdr", "hypdr"):
                result = rewrite(tgds, algorithm=algorithm)
                facts = {
                    fact
                    for fact in materialize(result.program(), instance).facts()
                    if fact.is_base_fact
                }
                assert facts == expected, (seed, algorithm)
