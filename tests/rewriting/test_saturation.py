"""Tests for the saturation engine (Algorithm 1) and its settings."""

import pytest

from repro.rewriting import RewritingSettings, rewrite
from repro.rewriting.exbdr import ExbDR
from repro.rewriting.hypdr import HypDR
from repro.rewriting.saturation import Saturation, saturate
from repro.rewriting.skdr import SkDR
from repro.workloads.families import running_example
from repro.logic.parser import parse_tgds


class TestAlgorithmOne:
    def test_statistics_are_populated(self):
        tgds, _ = running_example()
        result = saturate(ExbDR(), tgds)
        stats = result.statistics
        assert stats.input_size == 6  # the 6 input GTGDs are already head-normal
        assert stats.processed > 0
        assert stats.derived > 0
        assert stats.elapsed_seconds >= 0.0
        assert not stats.timed_out

    def test_input_size_counts_skolemized_rules_for_rule_algorithms(self):
        tgds, _ = running_example()
        result = saturate(SkDR(), tgds)
        # Skolemizing the head-normalized input produces 8 rules
        assert result.statistics.input_size == 8

    def test_smaller_clauses_are_processed_first(self):
        tgds = parse_tgds(
            """
            A(?x), B(?x), C(?x), D(?x) -> E(?x).
            A(?x) -> B(?x).
            """
        )
        saturation = Saturation(ExbDR())
        saturation.run(tgds)
        assert saturation.statistics.processed == 2

    def test_tautologies_are_discarded(self):
        tgds = parse_tgds(
            """
            A(?x), B(?x) -> A(?x).
            A(?x) -> B(?x).
            """
        )
        result = saturate(ExbDR(), tgds)
        assert result.statistics.discarded_tautology >= 1
        assert result.output_size == 1

    def test_forward_subsumption_discards_weaker_clauses(self):
        tgds = parse_tgds(
            """
            A(?x1, ?x2) -> B(?x1).
            A(?x1, ?x2), C(?x1) -> B(?x1).
            """
        )
        result = saturate(ExbDR(), tgds)
        assert result.output_size == 1
        assert result.statistics.discarded_forward >= 1

    def test_backward_subsumption_removes_previously_retained_clauses(self):
        tgds = parse_tgds(
            """
            A(?x1, ?x2), C(?x1) -> B(?x1).
            A(?x1, ?x2) -> B(?x1).
            """
        )
        # the weaker clause is processed first (equal sizes are FIFO, but the
        # stronger one arrives second), so backward subsumption must kick in
        result = saturate(ExbDR(), tgds)
        assert result.output_size == 1

    def test_worked_off_size_is_reported(self):
        tgds, _ = running_example()
        result = saturate(HypDR(), tgds)
        assert result.worked_off_size >= result.output_size


class TestSettings:
    def test_disabling_subsumption_keeps_more_clauses(self):
        tgds, _ = running_example()
        with_subsumption = saturate(SkDR(RewritingSettings()), tgds)
        without_subsumption = saturate(
            SkDR(RewritingSettings(use_subsumption=False)), tgds
        )
        assert (
            without_subsumption.worked_off_size
            >= with_subsumption.worked_off_size
        )

    def test_disabling_subsumption_preserves_answers(self):
        from repro.chase import certain_base_facts
        from repro.datalog import materialize

        tgds, instance = running_example()
        result = rewrite(
            tgds, algorithm="skdr", settings=RewritingSettings(use_subsumption=False)
        )
        facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts == certain_base_facts(instance, tgds)

    def test_exact_subsumption_setting(self):
        tgds, _ = running_example()
        result = saturate(
            ExbDR(RewritingSettings(exact_subsumption=True)), tgds
        )
        assert result.completed

    def test_timeout_zero_stops_immediately(self):
        tgds, _ = running_example()
        result = saturate(
            ExbDR(RewritingSettings(timeout_seconds=0.0)), tgds
        )
        assert not result.completed
        assert result.statistics.timed_out

    def test_max_clauses_limit(self):
        tgds, _ = running_example()
        result = saturate(
            SkDR(RewritingSettings(max_clauses=1)), tgds
        )
        assert not result.completed

    def test_result_helpers(self):
        tgds, _ = running_example()
        result = saturate(HypDR(), tgds)
        assert result.output_size == len(result.datalog_rules)
        assert result.blowup() == pytest.approx(
            result.output_size / result.statistics.input_size
        )
        assert result.max_body_atoms() >= 1
        assert len(result.program()) == result.output_size
