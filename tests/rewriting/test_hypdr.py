"""Tests for the HypDR algorithm (Definition 5.16, Example 5.17, Prop. 5.20)."""

from repro.chase import certain_base_facts
from repro.datalog import materialize
from repro.logic.normal_form import normalize_rule
from repro.logic.parser import parse_facts, parse_tgds
from repro.logic.rules import datalog_tgd_to_rule
from repro.rewriting import RewritingSettings, rewrite
from repro.rewriting.hypdr import HypDR
from repro.rewriting.saturation import Saturation
from repro.rewriting.skdr import SkDR
from repro.workloads.families import (
    hypdr_advantage_family,
    running_example,
    running_example_shortcuts,
)


def _contains_rule(result, tgd) -> bool:
    target = normalize_rule(datalog_tgd_to_rule(tgd))
    return any(normalize_rule(rule) == target for rule in result.datalog_rules)


class TestRunningExample:
    def test_shortcut_rules_are_derived(self):
        tgds, _ = running_example()
        result = rewrite(tgds, algorithm="hypdr")
        for shortcut in running_example_shortcuts():
            assert _contains_rule(result, shortcut), f"missing {shortcut}"

    def test_correct_on_running_instance(self):
        tgds, instance = running_example()
        result = rewrite(tgds, algorithm="hypdr")
        facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts == certain_base_facts(instance, tgds)

    def test_no_skolem_bodied_rules_are_retained(self):
        """Example 5.17: HypDR never keeps rules with Skolem terms in the body
        that were derived by the inference (initial Skolemized rules have
        Skolem-free bodies anyway)."""
        tgds, _ = running_example()
        hypdr = HypDR()
        saturation = Saturation(hypdr)
        saturation.run(tgds)
        for rule in saturation._worked_off:
            assert rule.body_is_skolem_free

    def test_fewer_or_equal_clauses_than_skdr_on_running_example(self):
        tgds, _ = running_example()
        skdr_saturation = Saturation(SkDR())
        skdr_saturation.run(tgds)
        hypdr_saturation = Saturation(HypDR())
        hypdr_saturation.run(tgds)
        assert len(hypdr_saturation._worked_off) <= len(skdr_saturation._worked_off)


class TestProposition520:
    def test_skdr_derives_exponentially_more_rules_than_hypdr(self):
        n = 4
        tgds = hypdr_advantage_family(n)
        settings = RewritingSettings(use_subsumption=False, use_lookahead=False)

        skdr_saturation = Saturation(SkDR(settings))
        skdr_saturation.run(tgds)
        hypdr_saturation = Saturation(HypDR(settings))
        hypdr_saturation.run(tgds)

        skdr_e_rules = [
            rule
            for rule in skdr_saturation._worked_off
            if rule.head.predicate.name == "E"
        ]
        hypdr_e_rules = [
            rule
            for rule in hypdr_saturation._worked_off
            if rule.head.predicate.name == "E"
        ]
        # SkDR derives a rule for every nonempty subset of {1..n}; HypDR only
        # needs the collecting rule itself plus the full resolution
        assert len(skdr_e_rules) >= 2 ** n - 1
        assert len(hypdr_e_rules) < len(skdr_e_rules)

    def test_both_algorithms_agree_on_the_answers(self):
        tgds = hypdr_advantage_family(3)
        instance = parse_facts("A(a). C1(a). C2(a). C3(a).")
        expected = certain_base_facts(instance, tgds)
        for algorithm in ("skdr", "hypdr"):
            result = rewrite(tgds, algorithm=algorithm)
            facts = {
                fact
                for fact in materialize(result.program(), instance).facts()
                if fact.is_base_fact
            }
            assert facts == expected, algorithm

    def test_e_is_only_derivable_with_all_ci_facts(self):
        tgds = hypdr_advantage_family(3)
        instance = parse_facts("A(a). C1(a). C2(a).")  # C3 missing
        result = rewrite(tgds, algorithm="hypdr")
        facts = materialize(result.program(), instance).facts()
        assert not any(fact.predicate.name == "E" for fact in facts)


class TestSearchBehaviour:
    def test_multi_premise_resolution_in_one_step(self):
        """HypDR resolves both body atoms of the collector in a single conclusion."""
        tgds = parse_tgds(
            """
            A(?x) -> exists ?y. B(?x, ?y), C(?x, ?y).
            B(?x1, ?x2), C(?x1, ?x2) -> D(?x1).
            """
        )
        result = rewrite(tgds, algorithm="hypdr")
        assert any(
            rule.head.predicate.name == "D"
            and len(rule.body) == 1
            and rule.body[0].predicate.name == "A"
            for rule in result.datalog_rules
        )

    def test_branch_budget_limits_explosion(self):
        hypdr = HypDR()
        hypdr.max_branches = 1
        saturation = Saturation(hypdr)
        tgds, instance = running_example()
        result = saturation.run(tgds)
        # with an absurdly small budget the run still terminates and returns
        # a (possibly incomplete) set of Datalog rules
        assert result.datalog_rules is not None

    def test_matches_oracle_on_random_inputs(self):
        from repro.workloads.random_gtgds import (
            RandomGTGDConfig,
            generate_random_gtgds,
            generate_random_instance,
        )

        for seed in range(40, 48):
            config = RandomGTGDConfig(seed=seed, tgd_count=6, predicate_count=5)
            tgds = generate_random_gtgds(config)
            instance = generate_random_instance(tgds, seed=seed)
            expected = certain_base_facts(instance, tgds)
            result = rewrite(tgds, algorithm="hypdr")
            facts = {
                fact
                for fact in materialize(result.program(), instance).facts()
                if fact.is_base_fact
            }
            assert facts == expected, f"seed {seed}"
