"""Tests for the pluggable algorithm registry."""

import pytest

from repro.rewriting import (
    ALGORITHMS,
    AlgorithmCapabilities,
    RewritingSettings,
    algorithm_capabilities,
    available_algorithms,
    capability_report,
    make_inference,
    register_algorithm,
    registered_algorithms,
    rewrite,
    unregister_algorithm,
)
from repro.rewriting.hypdr import HypDR
from repro.workloads.families import running_example


class TestBuiltinRegistration:
    def test_builtins_are_registered(self):
        assert registered_algorithms() == ("exbdr", "fulldr", "hypdr", "skdr")

    def test_capabilities_are_reported(self):
        caps = algorithm_capabilities("hypdr")
        assert caps.clause_kind == "rule"
        assert caps.supports_lookahead is True
        assert caps.blowup_class == "single-exponential"

    def test_capability_report_covers_every_algorithm(self):
        report = capability_report()
        assert set(report) == set(registered_algorithms())
        for record in report.values():
            assert {"clause_kind", "supports_lookahead", "blowup_class"} <= set(
                record
            )

    def test_available_algorithms_detailed(self):
        detailed = available_algorithms(detailed=True)
        assert detailed["exbdr"]["clause_kind"] == "tgd"
        assert set(detailed) == set(available_algorithms())

    def test_classes_carry_their_registration(self):
        assert HypDR.algorithm_name == "hypdr"
        assert HypDR.capabilities.clause_kind == "rule"

    def test_algorithms_view_is_live_mapping(self):
        assert "hypdr" in ALGORITHMS
        assert ALGORITHMS["hypdr"] is HypDR
        assert len(ALGORITHMS) == len(registered_algorithms())
        with pytest.raises(KeyError):
            ALGORITHMS["magic"]


class TestErrorPaths:
    def test_unknown_algorithm_from_make_inference(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_inference("magic")

    def test_unknown_algorithm_from_rewrite(self):
        tgds, _ = running_example()
        with pytest.raises(ValueError, match="unknown algorithm"):
            rewrite(tgds, algorithm="magic")

    def test_unknown_algorithm_from_capabilities_lookup(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            algorithm_capabilities("magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(
                "hypdr",
                capabilities=AlgorithmCapabilities(
                    clause_kind="rule",
                    supports_lookahead=False,
                    blowup_class="polynomial",
                ),
            )(type("Impostor", (), {}))

    def test_invalid_clause_kind_rejected(self):
        with pytest.raises(ValueError, match="clause_kind"):
            AlgorithmCapabilities(
                clause_kind="magic", supports_lookahead=False, blowup_class="poly"
            )


class TestPluggability:
    def test_new_algorithm_plugs_into_dispatch(self):
        """A decorated subclass is dispatchable without touching rewriter code."""

        @register_algorithm(
            "hypdr-alias",
            capabilities=AlgorithmCapabilities(
                clause_kind="rule",
                supports_lookahead=True,
                blowup_class="single-exponential",
                description="HypDR under a plugin name",
            ),
        )
        class HypDRAlias(HypDR):
            name = "HypDRAlias"

        try:
            assert "hypdr-alias" in registered_algorithms()
            assert isinstance(make_inference("hypdr-alias"), HypDRAlias)
            tgds, _ = running_example()
            result = rewrite(tgds, algorithm="hypdr-alias")
            assert result.algorithm == "HypDRAlias"
            expected = rewrite(tgds, algorithm="hypdr")
            assert set(result.datalog_rules) == set(expected.datalog_rules)
        finally:
            assert unregister_algorithm("hypdr-alias")
        assert "hypdr-alias" not in registered_algorithms()

    def test_reregistering_same_class_is_idempotent(self):
        capabilities = algorithm_capabilities("hypdr")
        register_algorithm("hypdr", capabilities=capabilities)(HypDR)
        assert ALGORITHMS["hypdr"] is HypDR


class TestSettingsValidation:
    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout_seconds"):
            RewritingSettings(timeout_seconds=-1.0)

    def test_non_positive_max_clauses_rejected(self):
        for bad in (0, -5):
            with pytest.raises(ValueError, match="max_clauses"):
                RewritingSettings(max_clauses=bad)

    def test_zero_timeout_and_positive_limits_accepted(self):
        settings = RewritingSettings(timeout_seconds=0.0, max_clauses=1)
        assert settings.timeout_seconds == 0.0
        assert settings.max_clauses == 1
