"""Tests for the SkDR algorithm (Definition 5.10, Example 5.11, Prop. 5.14/5.15)."""

from repro.chase import certain_base_facts
from repro.datalog import materialize
from repro.logic.normal_form import normalize_rule
from repro.logic.parser import parse_tgd, parse_tgds
from repro.logic.rules import Rule, datalog_tgd_to_rule
from repro.rewriting import RewritingSettings, rewrite
from repro.rewriting.saturation import Saturation
from repro.rewriting.skdr import SkDR
from repro.workloads.families import (
    exbdr_blowup_family,
    running_example,
    running_example_shortcuts,
    skdr_blowup_family,
)


def _contains_rule(result, tgd) -> bool:
    target = normalize_rule(datalog_tgd_to_rule(tgd))
    return any(normalize_rule(rule) == target for rule in result.datalog_rules)


class TestRunningExample:
    def test_shortcut_rules_are_derived(self):
        tgds, _ = running_example()
        result = rewrite(tgds, algorithm="skdr")
        for shortcut in running_example_shortcuts():
            assert _contains_rule(result, shortcut), f"missing {shortcut}"

    def test_correct_on_running_instance(self):
        tgds, instance = running_example()
        result = rewrite(tgds, algorithm="skdr")
        facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts == certain_base_facts(instance, tgds)

    def test_output_rules_are_skolem_free(self):
        tgds, _ = running_example()
        result = rewrite(tgds, algorithm="skdr")
        assert all(rule.is_skolem_free for rule in result.datalog_rules)

    def test_intermediate_skolem_rules_exist_in_worked_off_set(self):
        """Rules such as (26)/(27) with Skolem terms appear during saturation."""
        tgds, _ = running_example()
        skdr = SkDR()
        saturation = Saturation(skdr)
        saturation.run(tgds)
        skolem_rules = [
            rule for rule in saturation._worked_off if not rule.is_skolem_free
        ]
        assert skolem_rules, "SkDR should derive intermediate Skolem rules"


class TestGeneratorAndConsumerSelection:
    def test_generator_requires_skolem_free_body(self):
        skdr = SkDR()
        rules = skdr.initial_clauses(
            parse_tgds("A(?x) -> exists ?y. B(?x, ?y).")
        )
        assert all(skdr._is_generator(rule) for rule in rules)

    def test_datalog_consumer_atom_must_be_a_guard(self):
        """For Skolem-free τ', only body atoms containing all variables are eligible."""
        skdr = SkDR()
        tgds = parse_tgds("B(?x1, ?x2), C(?x1) -> D(?x1).")
        (rule,) = skdr.initial_clauses(tgds)
        eligible = skdr._eligible_body_atoms(rule)
        assert [atom.predicate.name for atom in eligible] == ["B"]

    def test_skolem_consumer_atoms_must_contain_skolems(self):
        from repro.logic.atoms import Predicate
        from repro.logic.terms import FunctionSymbol, Variable

        skdr = SkDR()
        x = Variable("x")
        f = FunctionSymbol("f", 1, is_skolem=True)
        A, B, C = Predicate("A", 1), Predicate("B", 2), Predicate("C", 1)
        rule = Rule((A(x), B(x, f(x))), C(x))
        eligible = skdr._eligible_body_atoms(rule)
        assert [atom.predicate.name for atom in eligible] == ["B"]


class TestSeparationFamilies:
    def test_proposition_5_14_skdr_stays_linear(self):
        """On the Σn of Prop. 5.14 SkDR derives only the n rules (34)."""
        n = 4
        tgds = exbdr_blowup_family(n)
        skdr = SkDR(RewritingSettings(use_lookahead=False))
        saturation = Saturation(skdr)
        result = saturation.run(tgds)
        derived_datalog = [
            rule
            for rule in result.datalog_rules
            if rule.head.predicate.name.startswith("D")
        ]
        assert len(derived_datalog) == n

    def test_proposition_5_15_skdr_explodes(self):
        """On the Σn of Prop. 5.15 SkDR derives ~2^n rules deriving C."""
        n = 4
        tgds = skdr_blowup_family(n)
        skdr = SkDR(RewritingSettings(use_subsumption=False, use_lookahead=False))
        saturation = Saturation(skdr)
        saturation.run(tgds)
        c_rules = [
            rule
            for rule in saturation._worked_off
            if rule.head.predicate.name == "C"
        ]
        # one rule per nonempty-complement subset {k1..km} ⊊ {1..n}, plus the
        # original collecting rule and the final Datalog shortcut
        assert len(c_rules) >= 2 ** n - 1

    def test_proposition_5_15_rewriting_is_still_correct(self):
        from repro.logic.parser import parse_facts

        tgds = skdr_blowup_family(3)
        instance = parse_facts("A(a).")
        result = rewrite(tgds, algorithm="skdr")
        facts = {
            fact
            for fact in materialize(result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts == certain_base_facts(instance, tgds)


class TestCorrectnessOnGeneratedInputs:
    def test_matches_oracle_on_random_inputs(self):
        from repro.workloads.random_gtgds import (
            RandomGTGDConfig,
            generate_random_gtgds,
            generate_random_instance,
        )

        for seed in range(20, 28):
            config = RandomGTGDConfig(seed=seed, tgd_count=6, predicate_count=5)
            tgds = generate_random_gtgds(config)
            instance = generate_random_instance(tgds, seed=seed)
            expected = certain_base_facts(instance, tgds)
            result = rewrite(tgds, algorithm="skdr")
            facts = {
                fact
                for fact in materialize(result.program(), instance).facts()
                if fact.is_base_fact
            }
            assert facts == expected, f"seed {seed}"
