"""Tests for the benchmark harness: runner, statistics, and reports."""

import pytest

from repro.harness.runner import BenchmarkRunner, RunRecord, run_on_tgds
from repro.harness.reports import (
    cactus_report,
    end_to_end_report,
    figure_summary_report,
    format_table,
    full_figure_report,
    pairwise_report,
    table1_report,
)
from repro.harness.stats import (
    both_fail_matrix,
    cactus_series,
    inputs_unprocessed_by_all,
    pairwise_slowdown_matrix,
    summarize,
)
from repro.workloads.ontology_suite import generate_suite, suite_statistics


@pytest.fixture(scope="module")
def mini_suite():
    return generate_suite(count=3, seed=11, min_axioms=8, max_axioms=24)


@pytest.fixture(scope="module")
def mini_records(mini_suite):
    runner = BenchmarkRunner(timeout_seconds=10.0, include_kaon2=True)
    return runner.run_suite(mini_suite, algorithms=("exbdr", "skdr", "hypdr"))


class TestRunner:
    def test_records_cover_all_algorithm_input_pairs(self, mini_suite, mini_records):
        assert len(mini_records) == len(mini_suite) * 4  # three algorithms + kaon2

    def test_record_fields(self, mini_records):
        record = mini_records[0]
        assert record.input_size > 0
        assert record.output_size >= 0
        assert record.elapsed_seconds >= 0.0
        assert isinstance(record.as_dict(), dict)

    def test_blowup_property(self):
        record = RunRecord(
            algorithm="x", input_id="i", input_size=10, output_size=15,
            max_body_atoms=2, elapsed_seconds=0.1, timed_out=False,
        )
        assert record.blowup == pytest.approx(1.5)
        empty = RunRecord(
            algorithm="x", input_id="i", input_size=0, output_size=0,
            max_body_atoms=0, elapsed_seconds=0.0, timed_out=False,
        )
        assert empty.blowup == 0.0

    def test_run_on_tgds(self, running):
        tgds, _ = running
        result, elapsed = run_on_tgds(tgds, "hypdr", timeout_seconds=10.0)
        assert result.completed
        assert elapsed >= 0.0

    def test_timeout_marks_record(self, mini_suite):
        runner = BenchmarkRunner(timeout_seconds=0.0, include_kaon2=False)
        record = runner.run_algorithm("exbdr", mini_suite[-1])
        assert record.timed_out
        assert not record.succeeded

    def test_progress_callback(self, mini_suite):
        seen = []
        runner = BenchmarkRunner(timeout_seconds=5.0, include_kaon2=False)
        runner.run_suite(
            mini_suite[:1], algorithms=("hypdr",), progress=lambda a, i: seen.append((a, i))
        )
        assert seen == [("hypdr", mini_suite[0].identifier)]


class TestStats:
    def test_summaries_per_algorithm(self, mini_records):
        summaries = summarize(mini_records)
        names = {summary.algorithm for summary in summaries}
        assert names == {"exbdr", "skdr", "hypdr", "kaon2"}
        for summary in summaries:
            assert summary.processed_inputs + summary.failed_inputs + summary.unsupported_inputs == 3
            assert summary.min_time <= summary.median_time <= summary.max_time

    def test_cactus_series_are_sorted(self, mini_records):
        for series in cactus_series(mini_records).values():
            times = [time for _, time in series]
            assert times == sorted(times)

    def test_pairwise_matrices_shape(self, mini_records):
        slowdown = pairwise_slowdown_matrix(mini_records)
        failures = both_fail_matrix(mini_records)
        algorithms = {"exbdr", "skdr", "hypdr", "kaon2"}
        assert {pair[0] for pair in slowdown} == algorithms
        assert all(count >= 0 for count in slowdown.values())
        assert all(count >= 0 for count in failures.values())

    def test_inputs_unprocessed_by_all(self):
        records = [
            RunRecord("a", "i1", 1, 1, 1, 0.1, timed_out=True),
            RunRecord("b", "i1", 1, 1, 1, 0.1, timed_out=True),
            RunRecord("a", "i2", 1, 1, 1, 0.1, timed_out=False),
            RunRecord("b", "i2", 1, 1, 1, 0.1, timed_out=True),
        ]
        assert inputs_unprocessed_by_all(records) == ("i1",)

    def test_slowdown_matrix_counts_timeouts_as_slow(self):
        records = [
            RunRecord("fast", "i1", 1, 1, 1, 0.01, timed_out=False),
            RunRecord("slow", "i1", 1, 1, 1, 1.0, timed_out=True),
        ]
        matrix = pairwise_slowdown_matrix(records)
        assert matrix[("slow", "fast")] == 1
        assert matrix[("fast", "slow")] == 0


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["col", "n"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_table1_report(self, mini_suite):
        text = table1_report(suite_statistics(mini_suite), len(mini_suite))
        assert "Table 1" in text
        assert "Full TGDs" in text and "Non-Full TGDs" in text

    def test_figure_summary_report(self, mini_records):
        text = figure_summary_report(mini_records, "Figure 4 (test)")
        assert "Figure 4 (test)" in text
        assert "# of Processed Inputs" in text
        assert "hypdr" in text

    def test_cactus_and_pairwise_reports(self, mini_records):
        assert "Cactus plot" in cactus_report(mini_records)
        pairwise = pairwise_report(mini_records)
        assert "time(Y)/time(X)" in pairwise
        assert "both fail" in pairwise

    def test_full_figure_report_combines_sections(self, mini_records):
        text = full_figure_report(mini_records, "Figure")
        assert text.count("\n\n") >= 2

    def test_end_to_end_report(self):
        rows = [
            {
                "input_id": "00001",
                "rule_count": 10,
                "input_facts": 100,
                "output_facts": 450,
                "elapsed_seconds": 0.5,
            }
        ]
        text = end_to_end_report(rows)
        assert "Table 2" in text
        assert "00001" in text
        assert "4.5" in text


class TestPerfCapture:
    def test_incremental_updates_scenario(self):
        from repro.harness.perfcapture import capture_incremental_updates

        payload = capture_incremental_updates(
            suite_size=2, max_axioms=20, top_k=1, fact_count=150, repeats=1
        )
        assert payload["rows"], "no completed rewriting to measure"
        assert payload["all_consistent"], (
            "delta propagation diverged from full re-materialization"
        )
        assert payload["speedup_delta_vs_full"] > 1.0
        for row in payload["rows"]:
            assert row["delta_facts"] >= 1
            assert row["base_facts"] + row["delta_facts"] <= row["output_facts"]

    def test_churn_scenario(self):
        from repro.harness.perfcapture import capture_churn

        payload = capture_churn(
            suite_size=2, max_axioms=20, top_k=1, fact_count=150,
            op_count=4, repeats=1,
        )
        assert payload["rows"], "no completed rewriting to measure"
        assert payload["all_consistent"], (
            "DRed retraction diverged from full re-materialization"
        )
        assert payload["speedup_churn_vs_full"] > 1.0
        dred = payload["dred"]
        assert dred["retracted"] > 0
        assert dred["rounds"] > 0
        # over-deletion never removes more than it first suspects
        assert dred["net_removed"] <= dred["retracted"] + dred["overdeleted"]
        for row in payload["rows"]:
            assert row["ops"] >= 2
            assert row["consistent"]

    def test_skolem_chase_scenario(self):
        from repro.harness.perfcapture import capture_skolem_chase

        payload = capture_skolem_chase(
            suite_size=2, max_axioms=14, fact_count=50, repeats=1
        )
        assert payload["rows"], "no chase input measured"
        assert payload["all_consistent"], (
            "semi-naive chase diverged from the naive reference"
        )
        assert payload["status"] == "completed"
        assert payload["speedup_vs_pre_change"] is not None
        chase_plan = payload["chase_plan"]
        assert chase_plan["rounds"] > 0
        assert chase_plan["probes"] > 0
        assert chase_plan["delta_facts"] > 0
        for row in payload["rows"]:
            assert row["output_facts"] >= row["input_facts"]

    def test_guarded_oracle_scenario(self):
        from repro.harness.perfcapture import capture_guarded_oracle

        payload = capture_guarded_oracle(suite_size=2, max_axioms=14, fact_count=30)
        assert payload["rows"], "no oracle input measured"
        assert payload["all_consistent"], (
            "worklist engine diverged from the recursive reference"
        )
        assert payload["status"] == "completed"
        assert payload["speedup_vs_pre_change"] is not None
        chase_plan = payload["chase_plan"]
        assert chase_plan["types_closed"] > 0
        assert chase_plan["rounds"] > 0

    def test_chase_blocks_render_in_reports(self):
        from repro.harness.reports import perf_report, step_summary_markdown

        payload = {
            "scale": "smoke",
            "wall_seconds": 1.0,
            "scenarios": {
                "skolem_chase": {
                    "wall_seconds": 0.5,
                    "status": "completed",
                    "speedup_vs_pre_change": 7.5,
                    "all_consistent": True,
                    "chase_plan": {
                        "rounds": 4,
                        "max_delta": 12,
                        "probes": 100,
                        "probe_hits": 150,
                    },
                },
                "guarded_oracle": {
                    "wall_seconds": 0.5,
                    "status": "completed",
                    "speedup_vs_pre_change": 2.5,
                    "all_consistent": False,
                    "chase_plan": {
                        "rounds": 6,
                        "max_delta": 9,
                        "types_closed": 11,
                        "types_reused": 40,
                        "imports": 3,
                    },
                },
            },
        }
        text = perf_report(payload)
        assert "7.5x faster than the naive loop" in text
        assert "2.5x faster than tree re-walks" in text
        assert "INCONSISTENT" in text  # the guarded block must surface it
        markdown = step_summary_markdown(payload)
        assert "Chase-plan stats" in markdown
        assert "| skolem_chase | 4 | 12 |" in markdown
        assert "11 types closed / 40 reused" in markdown

    def test_inconsistent_run_renders_even_without_a_speedup(self):
        # a diverged run whose ratio came out falsy (None/0.0) must still
        # surface the INCONSISTENT warning in both report formats
        from repro.harness.reports import perf_report, step_summary_markdown

        payload = {
            "scale": "smoke",
            "wall_seconds": 1.0,
            "scenarios": {
                "skolem_chase": {
                    "wall_seconds": 0.5,
                    "status": "completed",
                    "speedup_vs_pre_change": None,
                    "all_consistent": False,
                    "chase_plan": {"rounds": 0, "max_delta": 0, "probes": 0},
                },
            },
        }
        assert "INCONSISTENT" in perf_report(payload)
        assert "INCONSISTENT" in step_summary_markdown(payload)

    def test_compare_captures_reports_ratios(self):
        from repro.harness.perfcapture import compare_captures

        current = {
            "scale": "smoke",
            "scenarios": {"end_to_end": {"wall_seconds": 1.0}},
        }
        previous = {
            "scale": "smoke",
            "scenarios": {"end_to_end": {"wall_seconds": 2.0}},
        }
        assert compare_captures(current, previous) == {"end_to_end": 2.0}

    def test_compare_captures_rejects_scale_mismatch(self):
        from repro.harness.perfcapture import compare_captures

        result = compare_captures({"scale": "smoke"}, {"scale": "default"})
        assert "error" in result

    def test_compare_captures_skips_status_changed_scenarios(self):
        # a scenario that used to time out and now completes measures
        # different work: no ratio must be reported for it (it would read
        # as a wall-time regression), only the status transition
        from repro.harness.perfcapture import (
            compare_captures,
            compare_scenario_statuses,
        )

        current = {
            "scale": "default",
            "scenarios": {
                "fulldr_comparison": {
                    "wall_seconds": 4.0,
                    "status": "completed",
                },
                "end_to_end": {"wall_seconds": 1.0, "status": "completed"},
            },
        }
        previous = {
            "scale": "default",
            "scenarios": {
                "fulldr_comparison": {
                    "wall_seconds": 2.0,
                    "status": "timed_out",
                },
                "end_to_end": {"wall_seconds": 2.0, "status": "completed"},
            },
        }
        assert compare_captures(current, previous) == {"end_to_end": 2.0}
        assert compare_scenario_statuses(current, previous) == {
            "fulldr_comparison": {
                "baseline": "timed_out",
                "current": "completed",
            }
        }

    def test_compare_scenario_statuses_ignores_captures_without_flags(self):
        from repro.harness.perfcapture import compare_scenario_statuses

        current = {
            "scenarios": {"end_to_end": {"wall_seconds": 1.0, "status": "completed"}}
        }
        previous = {"scenarios": {"end_to_end": {"wall_seconds": 2.0}}}
        assert compare_scenario_statuses(current, previous) == {}

    def test_status_inferred_from_pre_flag_completed_booleans(self):
        # baselines captured before the status flag existed (the old
        # committed BENCH, CI merge-base captures of pre-flag code) still
        # carry per-algorithm completed booleans; the exclusion and the
        # status report must work against them
        from repro.harness.perfcapture import (
            compare_captures,
            compare_scenario_statuses,
        )

        previous = {
            "scale": "default",
            "scenarios": {
                "fulldr_comparison": {
                    "wall_seconds": 9.0,
                    "inputs": {
                        "example-E.3": {
                            "fulldr": {"wall_seconds": 8.0, "completed": False},
                            "hypdr": {"wall_seconds": 0.1, "completed": True},
                        }
                    },
                }
            },
        }
        current = {
            "scale": "default",
            "scenarios": {
                "fulldr_comparison": {"wall_seconds": 1.2, "status": "completed"}
            },
        }
        assert compare_captures(current, previous) == {}
        assert compare_scenario_statuses(current, previous) == {
            "fulldr_comparison": {
                "baseline": "timed_out",
                "current": "completed",
            }
        }

    def test_capture_perf_scenario_filter(self):
        from repro.harness.perfcapture import capture_perf

        payload = capture_perf(smoke=True, scenarios=["fulldr_comparison"])
        assert list(payload["scenarios"]) == ["fulldr_comparison"]
        assert payload["scenario_filter"] == ["fulldr_comparison"]
        scenario = payload["scenarios"]["fulldr_comparison"]
        assert scenario["status"] in ("completed", "timed_out")
        assert scenario["match_solver"]["solves"] > 0

    def test_capture_perf_rejects_unknown_scenario(self):
        from repro.harness.perfcapture import capture_perf

        with pytest.raises(ValueError, match="unknown perf scenario"):
            capture_perf(smoke=True, scenarios=["no_such_scenario"])

    def test_cli_scenario_choices_match_harness(self):
        # the CLI inlines the names so building the parser stays free of
        # harness imports; the two tuples must not drift apart
        from repro.cli import PERF_SCENARIO_NAMES
        from repro.harness.perfcapture import SCENARIO_NAMES

        assert PERF_SCENARIO_NAMES == SCENARIO_NAMES

    def test_gate_fails_on_newly_timed_out_scenario(self):
        from repro.cli import _newly_timed_out_scenarios

        payload = {
            "scenario_status_vs_baseline": {
                "fulldr_comparison": {
                    "baseline": "completed",
                    "current": "timed_out",
                },
                "end_to_end": {
                    "baseline": "timed_out",
                    "current": "completed",
                },
            }
        }
        # completed -> timed_out must trip the gate; the inverse flip is an
        # improvement and must not
        assert _newly_timed_out_scenarios(payload) == ["fulldr_comparison"]
        assert _newly_timed_out_scenarios({}) == []
