"""Unit tests for the TGD unification index."""

from repro.indexing.unification_index import TGDUnificationIndex
from repro.logic.parser import parse_tgds


class TestTGDUnificationIndex:
    def _tgds(self):
        return parse_tgds(
            """
            A(?x) -> exists ?y. B(?x, ?y), C(?x, ?y).
            B(?x, ?y), D(?x, ?y) -> E(?x).
            C(?x, ?y) -> D(?x, ?y).
            E(?x) -> A(?x).
            """
        )

    def test_add_remove_contains(self):
        index = TGDUnificationIndex()
        tgds = self._tgds()
        for tgd in tgds:
            index.add(tgd)
        assert len(index) == 4
        assert tgds[0] in index
        index.remove(tgds[0])
        assert tgds[0] not in index
        assert len(index) == 3

    def test_duplicate_add_is_idempotent(self):
        index = TGDUnificationIndex()
        tgd = self._tgds()[0]
        index.add(tgd)
        index.add(tgd)
        assert len(index) == 1

    def test_lookup_by_body_and_head_predicate(self):
        index = TGDUnificationIndex()
        tgds = self._tgds()
        for tgd in tgds:
            index.add(tgd)
        b_pred = tgds[0].head[0].predicate  # B/2
        by_head = set(index.with_head_predicate(b_pred))
        by_body = set(index.with_body_predicate(b_pred))
        assert tgds[0] in by_head
        assert tgds[1] in by_body

    def test_full_partners_for_non_full(self):
        index = TGDUnificationIndex()
        tgds = self._tgds()
        for tgd in tgds:
            index.add(tgd)
        partners = set(index.full_partners_for(tgds[0]))
        # the non-full TGD creates B and C facts; full TGDs mentioning B or C
        # in their bodies are candidates
        assert tgds[1] in partners
        assert tgds[2] in partners
        assert tgds[3] not in partners

    def test_non_full_partners_for_full(self):
        index = TGDUnificationIndex()
        tgds = self._tgds()
        for tgd in tgds:
            index.add(tgd)
        partners = set(index.non_full_partners_for(tgds[1]))
        assert partners == {tgds[0]}

    def test_removed_items_disappear_from_lookups(self):
        index = TGDUnificationIndex()
        tgds = self._tgds()
        for tgd in tgds:
            index.add(tgd)
        index.remove(tgds[1])
        assert tgds[1] not in set(index.full_partners_for(tgds[0]))
