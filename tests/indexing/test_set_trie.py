"""Unit tests for the set-trie."""

import random

from repro.indexing.set_trie import SetTrie


class TestBasicOperations:
    def test_insert_and_exact(self):
        trie = SetTrie()
        trie.insert({"a", "b"}, 1)
        assert trie.exact({"a", "b"}) == (1,)
        assert trie.exact({"a"}) == ()
        assert len(trie) == 1

    def test_multiple_values_per_set(self):
        trie = SetTrie()
        trie.insert({"a"}, 1)
        trie.insert({"a"}, 2)
        assert set(trie.exact({"a"})) == {1, 2}
        assert len(trie) == 2

    def test_duplicate_insert_is_idempotent(self):
        trie = SetTrie()
        trie.insert({"a"}, 1)
        trie.insert({"a"}, 1)
        assert len(trie) == 1

    def test_remove(self):
        trie = SetTrie()
        trie.insert({"a", "b"}, 1)
        assert trie.remove({"a", "b"}, 1)
        assert not trie.remove({"a", "b"}, 1)
        assert len(trie) == 0
        assert list(trie.values()) == []

    def test_empty_set_key(self):
        trie = SetTrie()
        trie.insert(set(), "empty")
        assert trie.exact(set()) == ("empty",)
        assert "empty" in set(trie.subsets_of({"a", "b"}))

    def test_values_iterates_everything(self):
        trie = SetTrie()
        trie.insert({"a"}, 1)
        trie.insert({"b", "c"}, 2)
        assert set(trie.values()) == {1, 2}


class TestSubsetSupersetQueries:
    def _populated(self):
        trie = SetTrie()
        trie.insert({"a"}, "a")
        trie.insert({"a", "b"}, "ab")
        trie.insert({"b", "c"}, "bc")
        trie.insert({"a", "b", "c"}, "abc")
        return trie

    def test_subsets_of(self):
        trie = self._populated()
        assert set(trie.subsets_of({"a", "b"})) == {"a", "ab"}
        assert set(trie.subsets_of({"a", "b", "c"})) == {"a", "ab", "bc", "abc"}
        assert set(trie.subsets_of({"c"})) == set()

    def test_supersets_of(self):
        trie = self._populated()
        assert set(trie.supersets_of({"b"})) == {"ab", "bc", "abc"}
        assert set(trie.supersets_of({"a", "c"})) == {"abc"}
        assert set(trie.supersets_of(set())) == {"a", "ab", "bc", "abc"}

    def test_contains_set(self):
        trie = self._populated()
        assert trie.contains_set({"a", "b"})
        assert not trie.contains_set({"a", "c"})


class TestAgainstBruteForce:
    def test_randomized_equivalence_with_naive_implementation(self):
        rng = random.Random(7)
        universe = list("abcdefgh")
        stored = []
        trie = SetTrie()
        for index in range(120):
            keys = frozenset(rng.sample(universe, rng.randint(0, 4)))
            stored.append((keys, index))
            trie.insert(keys, index)
        for _ in range(60):
            query = frozenset(rng.sample(universe, rng.randint(0, 5)))
            expected_subsets = {value for keys, value in stored if keys <= query}
            expected_supersets = {value for keys, value in stored if keys >= query}
            assert set(trie.subsets_of(query)) == expected_subsets
            assert set(trie.supersets_of(query)) == expected_supersets
