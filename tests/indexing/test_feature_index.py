"""Unit tests for the feature-vector subsumption index and relation clustering."""

from repro.indexing.clustering import RelationClustering
from repro.indexing.feature_index import SubsumptionIndex
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_tgd, parse_tgds
from repro.logic.rules import Rule
from repro.logic.terms import Variable

x, y = Variable("x"), Variable("y")
A = Predicate("A", 1)
B = Predicate("B", 1)
C = Predicate("C", 1)


class TestSubsumptionIndex:
    def test_add_contains_remove(self):
        index = SubsumptionIndex()
        tgd = parse_tgd("A(?x) -> B(?x).")
        index.add(tgd)
        assert tgd in index
        assert len(index) == 1
        index.remove(tgd)
        assert tgd not in index
        assert len(index) == 0

    def test_subsuming_candidates_require_body_subset_and_head_superset(self):
        index = SubsumptionIndex()
        general = parse_tgd("A(?x) -> B(?x).")
        other_head = parse_tgd("A(?x) -> C(?x).")
        bigger_body = parse_tgd("A(?x), C(?x) -> B(?x).")
        for tgd in (general, other_head, bigger_body):
            index.add(tgd)
        query = parse_tgd("A(?x), D(?x) -> B(?x).")
        candidates = set(index.subsuming_candidates(query))
        assert general in candidates
        assert other_head not in candidates  # head is not a superset
        assert bigger_body not in candidates  # body is not a subset

    def test_subsumed_candidates_is_the_dual_query(self):
        index = SubsumptionIndex()
        specific = parse_tgd("A(?x), D(?x) -> B(?x).")
        unrelated = parse_tgd("C(?x) -> B(?x).")
        index.add(specific)
        index.add(unrelated)
        query = parse_tgd("A(?x) -> B(?x).")
        candidates = set(index.subsumed_candidates(query))
        assert specific in candidates
        assert unrelated not in candidates

    def test_works_for_rules(self):
        index = SubsumptionIndex()
        rule = Rule((A(x),), B(x))
        index.add(rule)
        query = Rule((A(x), C(x)), B(x))
        assert rule in set(index.subsuming_candidates(query))

    def test_multi_head_tgds_use_head_sets(self):
        index = SubsumptionIndex()
        both = parse_tgd("A(?x) -> exists ?y. B(?x), R(?x, ?y).")
        index.add(both)
        query = parse_tgd("A(?x) -> exists ?y. R(?x, ?y).")
        assert both in set(index.subsuming_candidates(query))

    def test_items_iteration(self):
        index = SubsumptionIndex()
        tgds = parse_tgds("A(?x) -> B(?x). C(?x) -> B(?x).")
        for tgd in tgds:
            index.add(tgd)
        assert set(index.items()) == set(tgds)


class TestClustering:
    def test_identity_clustering(self):
        clustering = RelationClustering.identity([A, B, C])
        assert len({clustering.cluster_of(p) for p in (A, B, C)}) == 3

    def test_from_input_respects_requested_count(self):
        tgds = parse_tgds(
            """
            A(?x) -> B(?x).
            B(?x) -> C(?x).
            C(?x) -> D(?x).
            D(?x) -> E(?x).
            """
        )
        clustering = RelationClustering.from_input(tgds, cluster_count=2)
        clusters = {clustering.cluster_of(atom.predicate)
                    for tgd in tgds for atom in tgd.body + tgd.head}
        assert clusters <= {0, 1}

    def test_unknown_predicates_get_fresh_clusters(self):
        clustering = RelationClustering.from_input([], cluster_count=1)
        first = clustering.cluster_of(A)
        second = clustering.cluster_of(B)
        assert first != second

    def test_index_with_clustering_still_finds_candidates(self):
        tgds = parse_tgds(
            """
            A(?x) -> B(?x).
            A(?x), C(?x) -> B(?x).
            """
        )
        clustering = RelationClustering.from_input(tgds, cluster_count=1)
        index = SubsumptionIndex(clustering)
        index.add(tgds[0])
        # with a single cluster every stored item is a candidate, but the
        # post-filter on true predicate sets still applies
        assert tgds[0] in set(index.subsuming_candidates(tgds[1]))
