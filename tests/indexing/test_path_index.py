"""Unit tests for the path index over Skolemized rules."""

from repro.indexing.path_index import RulePathIndex, atom_path, paths_compatible
from repro.logic.atoms import Predicate
from repro.logic.rules import Rule
from repro.logic.terms import Constant, FunctionSymbol, Variable

A = Predicate("A", 1)
B = Predicate("B", 2)
C = Predicate("C", 2)
x, y = Variable("x"), Variable("y")
f = FunctionSymbol("f", 1, is_skolem=True)
g = FunctionSymbol("g", 1, is_skolem=True)


class TestAtomPaths:
    def test_path_of_function_free_atom(self):
        assert atom_path(B(x, y)) == ("B/2", "*", "*")

    def test_path_records_skolem_symbols(self):
        assert atom_path(B(x, f(x))) == ("B/2", "*", "f")

    def test_constants_are_wildcards(self):
        assert atom_path(B(Constant("a"), x)) == ("B/2", "*", "*")

    def test_compatibility(self):
        assert paths_compatible(("B/2", "*", "f"), ("B/2", "*", "*"))
        assert paths_compatible(("B/2", "*", "f"), ("B/2", "*", "f"))
        assert not paths_compatible(("B/2", "*", "f"), ("B/2", "*", "g"))
        assert not paths_compatible(("B/2", "*", "f"), ("C/2", "*", "f"))
        assert not paths_compatible(("B/2", "*"), ("B/2", "*", "*"))


class TestRulePathIndex:
    def _rules(self):
        generator = Rule((A(x),), B(x, f(x)))          # head with Skolem f
        other_generator = Rule((A(x),), B(x, g(x)))    # head with Skolem g
        consumer = Rule((B(x, y), A(x)), C(x, y))      # function-free body
        skolem_consumer = Rule((A(x), B(x, f(x))), C(x, x))
        return generator, other_generator, consumer, skolem_consumer

    def test_rules_with_unifiable_head(self):
        generator, other_generator, consumer, _ = self._rules()
        index = RulePathIndex()
        for rule in (generator, other_generator, consumer):
            index.add(rule)
        # query with the function-free body atom B(x, y): both Skolem heads match
        candidates = set(index.rules_with_unifiable_head(B(x, y)))
        assert {generator, other_generator} <= candidates
        # query with B(x, f(x)): only the f-generator head is compatible
        candidates_f = set(index.rules_with_unifiable_head(B(x, f(x))))
        assert generator in candidates_f
        assert other_generator not in candidates_f

    def test_rules_with_unifiable_body_atom(self):
        generator, other_generator, consumer, skolem_consumer = self._rules()
        index = RulePathIndex()
        for rule in (consumer, skolem_consumer):
            index.add(rule)
        candidates = set(index.rules_with_unifiable_body_atom(generator.head))
        assert consumer in candidates
        assert skolem_consumer in candidates
        candidates_g = set(index.rules_with_unifiable_body_atom(other_generator.head))
        assert consumer in candidates_g
        assert skolem_consumer not in candidates_g

    def test_remove(self):
        generator, _, consumer, _ = self._rules()
        index = RulePathIndex()
        index.add(generator)
        index.add(consumer)
        index.remove(consumer)
        assert consumer not in index
        assert consumer not in set(index.rules_with_unifiable_body_atom(generator.head))
        assert len(index) == 1

    def test_duplicate_add_is_idempotent(self):
        generator, *_ = self._rules()
        index = RulePathIndex()
        index.add(generator)
        index.add(generator)
        assert len(index) == 1
        assert set(index.items()) == {generator}
