"""Unit tests for the DL-to-GTGD translation."""

import pytest

from repro.dl.axioms import (
    Conjunction,
    Existential,
    NamedClass,
    Ontology,
    PropertyDomain,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
)
from repro.dl.translate import (
    UntranslatableAxiomError,
    translate_axiom,
    translate_ontology,
)


class TestSubClassAxioms:
    def test_atomic_inclusion(self):
        (tgd,) = translate_axiom(SubClassOf(NamedClass("A"), NamedClass("B")))
        assert tgd.is_full
        assert tgd.body[0].predicate.name == "A"
        assert tgd.head[0].predicate.name == "B"
        assert tgd.body[0].predicate.arity == 1

    def test_existential_superclass(self):
        (tgd,) = translate_axiom(
            SubClassOf(NamedClass("A"), Existential("r", NamedClass("B")))
        )
        assert tgd.is_non_full
        assert len(tgd.head) == 2
        assert {atom.predicate.name for atom in tgd.head} == {"r", "B"}
        assert len(tgd.existential_variables) == 1

    def test_nested_existential_superclass(self):
        (tgd,) = translate_axiom(
            SubClassOf(
                NamedClass("A"),
                Existential("r", Existential("s", NamedClass("B"))),
            )
        )
        assert len(tgd.existential_variables) == 2
        assert len(tgd.head) == 3

    def test_conjunction_superclass(self):
        (tgd,) = translate_axiom(
            SubClassOf(NamedClass("A"), Conjunction((NamedClass("B"), NamedClass("C"))))
        )
        assert tgd.is_full
        assert len(tgd.head) == 2

    def test_existential_subclass_is_guarded(self):
        (tgd,) = translate_axiom(
            SubClassOf(Existential("r", NamedClass("A")), NamedClass("B"))
        )
        assert tgd.is_guarded
        assert len(tgd.body) == 2

    def test_conjunction_subclass(self):
        (tgd,) = translate_axiom(
            SubClassOf(Conjunction((NamedClass("A"), NamedClass("B"))), NamedClass("C"))
        )
        assert len(tgd.body) == 2
        assert tgd.is_guarded

    def test_untranslatable_left_hand_side_rejected(self):
        # ∃r.∃s.A on the left gives an unguarded translation and must be rejected
        axiom = SubClassOf(
            Existential("r", Existential("s", NamedClass("A"))), NamedClass("B")
        )
        with pytest.raises(UntranslatableAxiomError):
            translate_axiom(axiom)


class TestPropertyAxioms:
    def test_subproperty(self):
        (tgd,) = translate_axiom(SubPropertyOf("r", "s"))
        assert tgd.is_full
        assert tgd.body[0].predicate.arity == 2

    def test_domain(self):
        (tgd,) = translate_axiom(PropertyDomain("r", NamedClass("A")))
        assert tgd.head[0].predicate.name == "A"
        # the class applies to the first argument of the role
        assert tgd.head[0].args[0] == tgd.body[0].args[0]

    def test_range(self):
        (tgd,) = translate_axiom(PropertyRange("r", NamedClass("A")))
        assert tgd.head[0].args[0] == tgd.body[0].args[1]

    def test_domain_with_existential_class(self):
        (tgd,) = translate_axiom(
            PropertyDomain("r", Existential("s", NamedClass("A")))
        )
        assert tgd.is_non_full


class TestOntologyTranslation:
    def test_cim_fragment_round_trip_semantics(self):
        """Translating the CIM-style axioms reproduces Example 1.1's entailments."""
        from repro.chase import certain_base_facts
        from repro.logic.parser import parse_facts
        from repro.logic.atoms import Predicate
        from repro.logic.terms import Constant

        ontology = Ontology(
            (
                SubClassOf(
                    NamedClass("ACEquipment"),
                    Existential("hasTerminal", NamedClass("ACTerminal")),
                ),
                SubClassOf(NamedClass("ACTerminal"), NamedClass("Terminal")),
                SubClassOf(
                    Existential("hasTerminal", NamedClass("Terminal")),
                    NamedClass("Equipment"),
                ),
                SubClassOf(
                    NamedClass("ACTerminal"),
                    Existential("partOf", NamedClass("ACEquipment")),
                ),
            )
        )
        tgds = translate_ontology(ontology)
        assert all(tgd.is_guarded for tgd in tgds)
        instance = parse_facts("ACEquipment(sw1). ACEquipment(sw2).")
        facts = certain_base_facts(instance, tgds)
        equipment = Predicate("Equipment", 1)
        assert equipment(Constant("sw1")) in facts
        assert equipment(Constant("sw2")) in facts

    def test_translation_deduplicates(self):
        ontology = Ontology(
            (
                SubClassOf(NamedClass("A"), NamedClass("B")),
                SubClassOf(NamedClass("A"), NamedClass("B")),
            )
        )
        assert len(translate_ontology(ontology)) == 1

    def test_classes_become_unary_and_roles_binary(self):
        ontology = Ontology(
            (SubClassOf(NamedClass("A"), Existential("r", NamedClass("B"))),)
        )
        tgds = translate_ontology(ontology)
        arities = {atom.predicate.name: atom.predicate.arity
                   for tgd in tgds for atom in tgd.body + tgd.head}
        assert arities["A"] == 1 and arities["B"] == 1 and arities["r"] == 2
