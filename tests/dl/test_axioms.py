"""Unit tests for the DL axiom language."""

import pytest

from repro.dl.axioms import (
    Conjunction,
    Existential,
    NamedClass,
    Ontology,
    PropertyDomain,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
    nesting_depth,
)


class TestClassExpressions:
    def test_named_class(self):
        assert str(NamedClass("Equipment")) == "Equipment"

    def test_existential(self):
        expr = Existential("hasTerminal", NamedClass("Terminal"))
        assert "hasTerminal" in str(expr)

    def test_conjunction_needs_two_operands(self):
        with pytest.raises(ValueError):
            Conjunction((NamedClass("A"),))

    def test_nesting_depth(self):
        a = NamedClass("A")
        assert nesting_depth(a) == 0
        assert nesting_depth(Existential("r", a)) == 1
        assert nesting_depth(Existential("r", Existential("s", a))) == 2
        assert nesting_depth(Conjunction((a, Existential("r", a)))) == 1


class TestOntology:
    def _ontology(self):
        axioms = (
            SubClassOf(NamedClass("ACEquipment"),
                       Existential("hasTerminal", NamedClass("ACTerminal"))),
            SubClassOf(NamedClass("ACTerminal"), NamedClass("Terminal")),
            PropertyDomain("hasTerminal", NamedClass("Equipment")),
            PropertyRange("partOf", NamedClass("Equipment")),
            SubPropertyOf("hasACTerminal", "hasTerminal"),
        )
        return Ontology(axioms, name="cim-fragment")

    def test_len(self):
        assert len(self._ontology()) == 5

    def test_class_names(self):
        names = self._ontology().class_names()
        assert {"ACEquipment", "ACTerminal", "Terminal", "Equipment"} == names

    def test_property_names(self):
        names = self._ontology().property_names()
        assert {"hasTerminal", "partOf", "hasACTerminal"} == names

    def test_axiom_str_renderings(self):
        ontology = self._ontology()
        rendered = [str(axiom) for axiom in ontology.axioms]
        assert any("subClassOf" in text for text in rendered)
        assert any("domain(" in text for text in rendered)
        assert any("range(" in text for text in rendered)
        assert any("subPropertyOf" in text for text in rendered)
