"""Unit tests for the KAON2-style baseline."""

import pytest

from repro.dl.axioms import Existential, NamedClass, Ontology, SubClassOf
from repro.dl.kaon2_baseline import Kaon2Baseline, UnsupportedArityError
from repro.logic.parser import parse_tgds
from repro.workloads.blowup import blow_up_arity
from repro.workloads.families import cim_example


class TestArityRestriction:
    def test_accepts_binary_relations(self, cim):
        tgds, _ = cim
        baseline = Kaon2Baseline()
        result = baseline.rewrite_tgds(tgds)
        assert result.algorithm == "KAON2"
        assert result.completed

    def test_rejects_higher_arity_relations(self):
        tgds = parse_tgds("S(?x, ?y, ?z) -> T(?x).")
        with pytest.raises(UnsupportedArityError):
            Kaon2Baseline().rewrite_tgds(tgds)

    def test_rejects_blown_up_inputs(self, cim):
        """The Figure 5 experiment drops KAON2 because of the arity restriction."""
        tgds, _ = cim
        blown_up = blow_up_arity(tgds, factor=5, seed=0)
        with pytest.raises(UnsupportedArityError):
            Kaon2Baseline().rewrite_tgds(blown_up)


class TestOntologyInterface:
    def _nested_ontology(self):
        return Ontology(
            (
                SubClassOf(
                    NamedClass("A"),
                    Existential("r", Existential("s", NamedClass("B"))),
                ),
                SubClassOf(NamedClass("B"), NamedClass("C")),
            )
        )

    def test_rewrite_ontology_applies_structural_transformation(self):
        """With the transformation the nested axiom is split, so the baseline
        saturates more (but structurally simpler) input rules."""
        with_transformation = Kaon2Baseline().rewrite_ontology(self._nested_ontology())
        without_transformation = Kaon2Baseline(
            apply_structural_transformation=False
        ).rewrite_ontology(self._nested_ontology())
        assert with_transformation.completed and without_transformation.completed
        assert (
            with_transformation.statistics.input_size
            > without_transformation.statistics.input_size
        )

    def test_structural_transformation_can_be_disabled(self):
        baseline = Kaon2Baseline(apply_structural_transformation=False)
        result = baseline.rewrite_ontology(self._nested_ontology())
        predicates = {
            atom.predicate.name
            for rule in result.datalog_rules
            for atom in rule.body + (rule.head,)
        }
        assert not any(name.startswith("StrX") for name in predicates)

    def test_baseline_answers_match_our_algorithms(self, cim):
        """On arity-2 inputs the baseline must compute an equivalent rewriting."""
        from repro.chase import certain_base_facts
        from repro.datalog import materialize

        tgds, instance = cim
        expected = certain_base_facts(instance, tgds)
        baseline_result = Kaon2Baseline().rewrite_tgds(tgds)
        facts = {
            fact
            for fact in materialize(baseline_result.program(), instance).facts()
            if fact.is_base_fact
        }
        assert facts == expected
