"""Unit tests for the structural transformation."""

from repro.dl.axioms import (
    Conjunction,
    Existential,
    NamedClass,
    Ontology,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
    nesting_depth,
)
from repro.dl.structural import StructuralTransformer, structural_transformation
from repro.dl.translate import translate_ontology


class TestAxiomSplitting:
    def test_nested_existential_is_split(self):
        """A ⊑ ∃B.∃C.D becomes A ⊑ ∃B.X and X ⊑ ∃C.D (the paper's example)."""
        axiom = SubClassOf(
            NamedClass("A"),
            Existential("B", Existential("C", NamedClass("D"))),
        )
        transformed = StructuralTransformer().transform_axiom(axiom)
        assert len(transformed) == 2
        assert all(
            isinstance(result, SubClassOf)
            and nesting_depth(result.sup) <= 1
            for result in transformed
        )

    def test_fresh_class_links_the_two_axioms(self):
        axiom = SubClassOf(
            NamedClass("A"),
            Existential("B", Existential("C", NamedClass("D"))),
        )
        helper_axiom, main_axiom = StructuralTransformer().transform_axiom(axiom)
        # the filler of the main axiom is the fresh class defined by the helper
        assert isinstance(main_axiom.sup, Existential)
        assert main_axiom.sup.filler == helper_axiom.sub

    def test_flat_axioms_are_unchanged(self):
        axiom = SubClassOf(NamedClass("A"), Existential("r", NamedClass("B")))
        assert StructuralTransformer().transform_axiom(axiom) == (axiom,)
        role_axiom = SubPropertyOf("r", "s")
        assert StructuralTransformer().transform_axiom(role_axiom) == (role_axiom,)

    def test_triple_nesting(self):
        axiom = SubClassOf(
            NamedClass("A"),
            Existential("r", Existential("s", Existential("t", NamedClass("D")))),
        )
        transformed = StructuralTransformer().transform_axiom(axiom)
        assert len(transformed) == 3

    def test_nested_existential_inside_conjunction(self):
        axiom = SubClassOf(
            NamedClass("A"),
            Conjunction(
                (NamedClass("B"), Existential("r", Existential("s", NamedClass("C"))))
            ),
        )
        transformed = StructuralTransformer().transform_axiom(axiom)
        assert len(transformed) == 2

    def test_property_range_is_flattened(self):
        axiom = PropertyRange("r", Existential("s", Existential("t", NamedClass("A"))))
        transformed = StructuralTransformer().transform_axiom(axiom)
        assert len(transformed) == 2


class TestOntologyTransformation:
    def _nested_ontology(self):
        return Ontology(
            (
                SubClassOf(
                    NamedClass("A"),
                    Existential("B", Existential("C", NamedClass("D"))),
                ),
                SubClassOf(NamedClass("D"), NamedClass("E")),
            ),
            name="nested",
        )

    def test_transformation_only_adds_axioms(self):
        ontology = self._nested_ontology()
        transformed = structural_transformation(ontology)
        assert len(transformed) == len(ontology) + 1
        assert transformed.name.endswith("+structural")

    def test_transformed_axioms_translate_to_simpler_tgds(self):
        ontology = self._nested_ontology()
        original_tgds = translate_ontology(ontology)
        transformed_tgds = translate_ontology(structural_transformation(ontology))
        max_head_original = max(len(tgd.head) for tgd in original_tgds)
        max_head_transformed = max(len(tgd.head) for tgd in transformed_tgds)
        assert max_head_transformed < max_head_original

    def test_entailed_facts_over_original_vocabulary_are_preserved(self):
        from repro.chase import certain_base_facts
        from repro.logic.parser import parse_facts

        ontology = self._nested_ontology()
        instance = parse_facts("A(a). D(d).")
        original = certain_base_facts(instance, translate_ontology(ontology))
        transformed = certain_base_facts(
            instance, translate_ontology(structural_transformation(ontology))
        )
        original_vocabulary = {
            fact for fact in original if not fact.predicate.name.startswith("StrX")
        }
        transformed_vocabulary = {
            fact for fact in transformed if not fact.predicate.name.startswith("StrX")
        }
        assert original_vocabulary == transformed_vocabulary

    def test_fresh_class_names_are_unique(self):
        transformer = StructuralTransformer()
        ontology = Ontology(
            (
                SubClassOf(
                    NamedClass("A"),
                    Existential("r", Existential("s", NamedClass("B"))),
                ),
                SubClassOf(
                    NamedClass("C"),
                    Existential("r", Existential("s", NamedClass("D"))),
                ),
            )
        )
        transformed = transformer.transform(ontology)
        fresh = [
            axiom.sub.name
            for axiom in transformed.axioms
            if isinstance(axiom, SubClassOf)
            and isinstance(axiom.sub, NamedClass)
            and axiom.sub.name.startswith("StrX")
        ]
        assert len(fresh) == len(set(fresh)) == 2
