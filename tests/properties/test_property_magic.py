"""Property-based differential: demand (magic sets) ≡ materialized answering.

The magic-sets transformation is answer-preserving by construction; these
properties enforce it empirically over random guarded TGD sets and random
instances — including zero-bound queries (where the transformation
degenerates to reachability-restricted full materialization) and sessions
mutated by random add/retract interleavings.  A final property pins the
serving-layer contract the answer cache relies on: a query's cache entry
(fingerprint plus encoded answers) is identical under either strategy.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog import DatalogProgram, QueryOptions, ReasoningSession, materialize
from repro.datalog.magic import demand_answer
from repro.datalog.query import ConjunctiveQuery, evaluate_query
from repro.logic.atoms import Atom
from repro.logic.rules import datalog_tgd_to_rule

from .strategies import PREDICATE_POOL, atoms, base_instances, guarded_tgd_sets

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def queries(draw, max_atoms: int = 2):
    """A random existential-free CQ: 1-2 atoms mixing constants and variables.

    Every variable is an answer variable (the class the rewriting approach
    supports), so any mix of bound/free positions — including fully bound
    and fully free — is generated.
    """
    count = draw(st.integers(min_value=1, max_value=max_atoms))
    body = tuple(draw(atoms()) for _ in range(count))
    seen = {}
    for atom in body:
        for variable in atom.variables():
            seen.setdefault(variable, None)
    return ConjunctiveQuery(tuple(seen), body)


def _program(tgds) -> DatalogProgram:
    return DatalogProgram(
        [datalog_tgd_to_rule(tgd) for tgd in tgds if tgd.is_datalog_rule]
    )


class TestDemandEquivalence:
    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=5), queries())
    def test_demand_answers_equal_materialized_answers(self, tgds, facts, query):
        program = _program(tgds)
        expected = evaluate_query(query, materialize(program, facts).store)
        assert demand_answer(program, facts, query).answers == expected

    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=5), queries())
    def test_cold_session_demand_equals_warm_session_answer(
        self, tgds, facts, query
    ):
        program = _program(tgds)
        cold = ReasoningSession(program, facts, defer_materialization=True)
        demand = cold.answer(query, options=QueryOptions(strategy="demand"))
        assert cold.is_cold  # demand must not have warmed it
        warm = ReasoningSession(program, facts)
        assert demand == warm.answer(query)
        # auto on the same cold start also agrees, whichever way it resolves
        auto = ReasoningSession(program, facts, defer_materialization=True)
        assert auto.answer(query) == demand

    @RELAXED
    @given(
        guarded_tgd_sets(max_size=4),
        base_instances(max_size=6),
        st.lists(
            st.tuples(
                st.booleans(),
                st.lists(st.integers(min_value=0, max_value=63), max_size=4),
            ),
            max_size=5,
        ),
        queries(),
    )
    def test_demand_agrees_after_add_retract_interleavings(
        self, tgds, facts, script, query
    ):
        """Explicit demand on a mutated session reads the surviving base facts."""
        program = _program(tgds)
        pool = sorted(set(facts), key=str)
        if not pool:
            return
        session = ReasoningSession(program, facts)
        for is_add, indices in script:
            batch = [pool[index % len(pool)] for index in indices]
            if is_add:
                session.add_facts(batch)
            else:
                session.retract_facts(batch)
        demand = session.answer(query, options=QueryOptions(strategy="demand"))
        assert demand == session.answer(
            query, options=QueryOptions(strategy="materialized")
        )


class TestCacheEntryStrategyInvariance:
    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=5), queries())
    def test_cache_entry_is_identical_under_either_strategy(
        self, tgds, facts, query
    ):
        """One fingerprint, one encoding: the answer cache never needs to know
        which strategy produced an entry."""
        from repro.serve.cache import AnswerCache, query_fingerprint
        from repro.serve.protocol import encode_answers

        program = _program(tgds)
        demand = ReasoningSession(
            program, facts, defer_materialization=True
        ).answer(query, options=QueryOptions(strategy="demand"))
        materialized = ReasoningSession(program, facts).answer(query)
        fingerprint = query_fingerprint(query)
        cache = AnswerCache()
        assert cache.put("kb", fingerprint, 0, encode_answers(demand))
        assert cache.get("kb", fingerprint) == encode_answers(materialized)
