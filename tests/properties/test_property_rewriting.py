"""Property-based tests for the core invariant of the paper:

for every finite set of guarded TGDs Σ and every base instance I, the Datalog
rewriting rew(Σ) entails exactly the same base facts as Σ on I (soundness and
completeness), for every rewriting algorithm.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase import certain_base_facts
from repro.datalog import materialize
from repro.logic.instance import Instance
from repro.rewriting import rewrite
from repro.rewriting.subsumption import (
    approximate_rule_subsumes,
    approximate_tgd_subsumes,
    exact_rule_subsumes,
    exact_tgd_subsumes,
)

from .strategies import base_instances, guarded_tgd_sets, guarded_tgds

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _rewriting_base_facts(tgds, instance, algorithm):
    result = rewrite(tgds, algorithm=algorithm)
    materialized = materialize(result.program(), instance)
    return frozenset(fact for fact in materialized.facts() if fact.is_base_fact)


class TestRewritingInvariant:
    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=4))
    def test_exbdr_entails_exactly_the_certain_base_facts(self, tgds, facts):
        instance = Instance(facts)
        expected = certain_base_facts(instance, tgds)
        assert _rewriting_base_facts(tgds, instance, "exbdr") == expected

    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=4))
    def test_skdr_entails_exactly_the_certain_base_facts(self, tgds, facts):
        instance = Instance(facts)
        expected = certain_base_facts(instance, tgds)
        assert _rewriting_base_facts(tgds, instance, "skdr") == expected

    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=4))
    def test_hypdr_entails_exactly_the_certain_base_facts(self, tgds, facts):
        instance = Instance(facts)
        expected = certain_base_facts(instance, tgds)
        assert _rewriting_base_facts(tgds, instance, "hypdr") == expected

    @RELAXED
    @given(guarded_tgd_sets(max_size=4))
    def test_rewritings_contain_only_function_free_rules(self, tgds):
        for algorithm in ("exbdr", "skdr", "hypdr"):
            result = rewrite(tgds, algorithm=algorithm)
            assert all(rule.is_skolem_free for rule in result.datalog_rules)

    @RELAXED
    @given(guarded_tgd_sets(max_size=3), base_instances(max_size=3))
    def test_rewriting_is_monotone_in_the_instance(self, tgds, facts):
        """Adding base facts can only add certain answers (monotonicity)."""
        smaller = Instance(facts[:-1]) if len(facts) > 1 else Instance([])
        larger = Instance(facts)
        small_answers = _rewriting_base_facts(tgds, smaller, "hypdr")
        large_answers = _rewriting_base_facts(tgds, larger, "hypdr")
        assert small_answers <= large_answers


class TestSubsumptionSoundnessProperty:
    @RELAXED
    @given(guarded_tgds(), guarded_tgds())
    def test_approximate_tgd_subsumption_implies_exact(self, left, right):
        if approximate_tgd_subsumes(left, right):
            assert exact_tgd_subsumes(left, right)

    @RELAXED
    @given(guarded_tgd_sets(max_size=3))
    def test_approximate_rule_subsumption_implies_exact(self, tgds):
        from repro.logic.skolem import SkolemFactory, skolemize
        from repro.logic.tgd import head_normalize

        rules = skolemize(head_normalize(tgds), SkolemFactory())
        for left in rules:
            for right in rules:
                if approximate_rule_subsumes(left, right):
                    assert exact_rule_subsumes(left, right)

    @RELAXED
    @given(guarded_tgds())
    def test_every_clause_subsumes_itself(self, tgd):
        assert exact_tgd_subsumes(tgd, tgd)
        assert approximate_tgd_subsumes(tgd, tgd)
