"""Differential properties: the constraint-propagating solver vs naive references.

The shared match solver (:mod:`repro.unification.solver`) must enumerate
exactly the substitution set of the retained naive enumerations on every
random conjunction — subset matching against
:func:`repro.unification.matching.naive_match_conjunction_into_set`, head
covering against a left-to-right backtracking recursion, and the
bounded-range mode against the literal cartesian-product-and-filter that
FullDR used to run.  Every enumerator in the codebase (FullDR, the Skolem
and guarded chases, exact subsumption, the naive Datalog reference
evaluator) routes through the solver, so these properties are what anchors
their correctness.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.unification.matching import (
    match_atom,
    naive_match_conjunction_into_set,
)
from repro.unification.solver import (
    solve_bounded,
    solve_cover,
    solve_match,
)

from .strategies import atoms, ground_atoms

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

BOUNDED_VARIABLES = tuple(Variable(name) for name in ("x", "y", "z"))
BOUNDED_RANGE_POOL = (
    Constant("a"),
    Constant("b"),
    Variable("w0"),
)


def _naive_cover(patterns, targets, base):
    """Left-to-right reference for μ(patterns) ⊇ targets (pre-solver shape)."""

    def recurse(index, current):
        if index == len(targets):
            yield current
            return
        for pattern in patterns:
            extended = match_atom(pattern, targets[index], current)
            if extended is not None:
                yield from recurse(index + 1, extended)

    yield from recurse(0, base)


def _naive_bounded(variables, range_terms, equalities):
    """FullDR's original enumeration: full cartesian product, then filter."""
    for images in itertools.product(range_terms, repeat=len(variables)):
        theta = Substitution(dict(zip(variables, images)))
        if all(
            theta.apply_atom(left) == theta.apply_atom(right)
            for left, right in equalities
        ):
            yield theta


@st.composite
def partial_bases(draw):
    """A pre-seeded substitution over a few of the shared variable names."""
    mapping = {}
    for name in draw(st.sets(st.sampled_from(("x", "y")), max_size=2)):
        mapping[Variable(name)] = draw(
            st.sampled_from((Constant("a"), Constant("b")))
        )
    return Substitution(mapping)


class TestMatchEquivalence:
    @RELAXED
    @given(
        st.lists(atoms(), max_size=3),
        st.lists(ground_atoms(), max_size=6),
    )
    def test_solver_matches_naive_reference(self, patterns, facts):
        expected = set(naive_match_conjunction_into_set(patterns, facts))
        got = set(solve_match(patterns, facts))
        assert got == expected

    @RELAXED
    @given(
        st.lists(atoms(), max_size=3),
        st.lists(ground_atoms(), max_size=5),
        partial_bases(),
    )
    def test_solver_matches_naive_reference_with_base(
        self, patterns, facts, base
    ):
        expected = set(naive_match_conjunction_into_set(patterns, facts, base))
        got = set(solve_match(patterns, facts, base))
        assert got == expected

    @RELAXED
    @given(
        st.lists(atoms(), max_size=3),
        st.lists(atoms(), max_size=4),
    )
    def test_solver_matches_naive_reference_on_clause_atoms(
        self, patterns, targets
    ):
        # subsumption matches pattern atoms into *clause* atoms, which may
        # themselves contain variables (the one-sided matching still only
        # instantiates the pattern side)
        expected = set(naive_match_conjunction_into_set(patterns, targets))
        got = set(solve_match(patterns, targets))
        assert got == expected


class TestCoverEquivalence:
    @RELAXED
    @given(
        st.lists(atoms(), min_size=1, max_size=3),
        st.lists(atoms(), max_size=3),
    )
    def test_solver_cover_matches_naive_reference(self, patterns, targets):
        expected = set(_naive_cover(patterns, targets, Substitution()))
        got = set(solve_cover(patterns, targets))
        assert got == expected


@st.composite
def bounded_problems(draw):
    """Random (variables, range, equalities) triples kept deliberately tiny.

    The naive reference walks ``|range| ** |variables|`` substitutions, so
    the sizes here bound it to a few hundred checks per example.
    """
    variables = BOUNDED_VARIABLES[: draw(st.integers(min_value=0, max_value=3))]
    range_terms = tuple(
        draw(st.sets(st.sampled_from(BOUNDED_RANGE_POOL), max_size=3))
    )
    pool = variables + (Constant("a"), Constant("c"), Variable("free"))
    equalities = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        pattern = draw(atoms())
        left = Atom(
            pattern.predicate,
            tuple(draw(st.sampled_from(pool)) for _ in pattern.args),
        )
        right = Atom(
            pattern.predicate,
            tuple(draw(st.sampled_from(pool)) for _ in pattern.args),
        )
        equalities.append((left, right))
    return variables, range_terms, tuple(equalities)


class TestBoundedEquivalence:
    @RELAXED
    @given(bounded_problems())
    def test_solver_matches_cartesian_filter_reference(self, problem):
        variables, range_terms, equalities = problem
        expected = set(_naive_bounded(variables, range_terms, equalities))
        got = set(solve_bounded(variables, range_terms, equalities))
        assert got == expected
