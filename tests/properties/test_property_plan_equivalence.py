"""Differential properties: hash-join plans vs the naive reference evaluator.

The plan-based engine (:mod:`repro.datalog.plan`) must compute exactly the
fixpoint of the retained tuple-at-a-time reference
(:func:`repro.datalog.engine.naive_reference_fixpoint`) on every program and
instance — full materialization, delta propagation through a session, and
top-level query answering all ride the same compiled join pipelines.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog import (
    ConjunctiveQuery,
    DatalogProgram,
    FactStore,
    ReasoningSession,
    evaluate_query,
    materialize,
    naive_reference_fixpoint,
)
from repro.logic.instance import Instance
from repro.logic.rules import datalog_tgd_to_rule
from repro.unification.matching import match_conjunction_into_set

from .strategies import base_instances, guarded_tgd_sets

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _datalog_rules(tgds):
    return [datalog_tgd_to_rule(tgd) for tgd in tgds if tgd.is_datalog_rule]


class TestPlanEquivalence:
    @RELAXED
    @given(guarded_tgd_sets(max_size=5), base_instances(max_size=5))
    def test_plan_fixpoint_equals_naive_reference(self, tgds, facts):
        program = DatalogProgram(_datalog_rules(tgds))
        expected = naive_reference_fixpoint(program, Instance(facts))
        result = materialize(program, Instance(facts))
        assert result.facts() == expected

    @RELAXED
    @given(
        guarded_tgd_sets(max_size=4),
        base_instances(max_size=6),
        st.integers(min_value=0, max_value=5),
    )
    def test_delta_propagation_equals_naive_reference(self, tgds, facts, split):
        # split the instance into base + delta; the session propagates the
        # delta through the same compiled plans and must land on the same
        # fixpoint as evaluating everything at once
        program = DatalogProgram(_datalog_rules(tgds))
        split = min(split, len(facts))
        base, delta = facts[:split], facts[split:]
        session = ReasoningSession(program, base)
        session.add_facts(delta)
        expected = naive_reference_fixpoint(program, facts)
        assert session.facts() == expected

    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=5))
    def test_query_answers_equal_tuple_at_a_time_matching(self, tgds, facts):
        # every rule body doubles as an existential-free conjunctive query
        # (all variables answering); the plan-based evaluation must agree
        # with direct tuple-at-a-time subset matching
        program = DatalogProgram(_datalog_rules(tgds))
        store = FactStore(facts)
        for rule in program:
            variables = tuple(
                dict.fromkeys(
                    var for atom in rule.body for var in atom.variables()
                )
            )
            query = ConjunctiveQuery(variables, rule.body)
            expected = frozenset(
                tuple(match[var] for var in variables)
                for match in match_conjunction_into_set(rule.body, tuple(store))
            )
            assert evaluate_query(query, store) == expected
