"""Property-based tests for the logic substrate (substitutions, normalization, parsing)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.normal_form import normalize_tgd
from repro.logic.parser import parse_tgd
from repro.logic.printer import format_atom, format_tgd
from repro.logic.skolem import SkolemFactory, skolemize_tgd
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

from .strategies import atoms, constants, guarded_tgds, variables


class TestSubstitutionProperties:
    @given(atoms(), variables(), constants())
    def test_applying_a_grounding_twice_is_idempotent(self, atom, var, const):
        substitution = Substitution({var: const})
        once = substitution.apply_atom(atom)
        twice = substitution.apply_atom(once)
        assert once == twice

    @given(atoms(), variables(), constants(), variables(), constants())
    def test_composition_agrees_with_sequential_application(
        self, atom, var1, const1, var2, const2
    ):
        first = Substitution({var1: const1})
        second = Substitution({var2: const2})
        composed = first.compose(second)
        assert composed.apply_atom(atom) == second.apply_atom(first.apply_atom(atom))

    @given(atoms())
    def test_empty_substitution_is_identity(self, atom):
        assert Substitution().apply_atom(atom) == atom

    @given(atoms(), variables(), constants())
    def test_domain_restriction_does_not_affect_other_variables(
        self, atom, var, const
    ):
        substitution = Substitution({var: const})
        restricted = substitution.restrict([var])
        assert restricted.apply_atom(atom) == substitution.apply_atom(atom)


class TestNormalizationProperties:
    @given(guarded_tgds())
    def test_normalization_is_idempotent(self, tgd):
        assert normalize_tgd(normalize_tgd(tgd)) == normalize_tgd(tgd)

    @given(guarded_tgds())
    def test_normalization_preserves_shape(self, tgd):
        normalized = normalize_tgd(tgd)
        assert len(normalized.body) == len(tgd.body)
        assert len(normalized.head) == len(tgd.head)
        assert len(normalized.existential_variables) == len(tgd.existential_variables)
        assert normalized.is_full == tgd.is_full

    @given(guarded_tgds())
    def test_normalization_is_invariant_under_renaming(self, tgd):
        renamed = tgd.rename_apart("fresh")
        assert normalize_tgd(renamed) == normalize_tgd(tgd)

    @given(guarded_tgds())
    def test_guardedness_is_preserved(self, tgd):
        assert normalize_tgd(tgd).is_guarded == tgd.is_guarded


class TestParserPrinterProperties:
    @given(guarded_tgds())
    def test_tgds_round_trip_through_text(self, tgd):
        # duplicates inside body/head collapse when treated as sets, so
        # compare the normalized forms of the deduplicated TGD
        from repro.logic.tgd import TGD

        deduplicated = TGD(tuple(dict.fromkeys(tgd.body)), tuple(dict.fromkeys(tgd.head)))
        reparsed = parse_tgd(format_tgd(deduplicated))
        assert normalize_tgd(reparsed) == normalize_tgd(deduplicated)

    @given(atoms())
    def test_atoms_round_trip_through_text(self, atom):
        from repro.logic.parser import parse_atom

        assert parse_atom(format_atom(atom)) == atom


class TestSkolemizationProperties:
    @given(guarded_tgds())
    def test_skolemization_produces_one_rule_per_head_atom(self, tgd):
        rules = skolemize_tgd(tgd, SkolemFactory())
        assert len(rules) == len(tgd.head)

    @given(guarded_tgds())
    def test_skolemized_rules_have_function_free_bodies(self, tgd):
        for rule in skolemize_tgd(tgd, SkolemFactory()):
            assert rule.body_is_skolem_free

    @given(guarded_tgds())
    def test_skolemized_rules_of_guarded_tgds_are_guarded(self, tgd):
        for rule in skolemize_tgd(tgd, SkolemFactory()):
            assert rule.is_guarded
