"""Property-based tests for unification and matching."""

from hypothesis import given

from repro.logic.substitution import Substitution
from repro.unification.matching import match_atom
from repro.unification.mgu import mgu, restricted_mgu

from .strategies import atoms, constants, ground_atoms, variables


class TestMGUProperties:
    @given(atoms(), atoms())
    def test_mgu_unifies(self, left, right):
        theta = mgu(left, right)
        if theta is not None:
            assert theta.apply_atom(left) == theta.apply_atom(right)

    @given(atoms())
    def test_mgu_with_itself_is_trivial(self, atom):
        theta = mgu(atom, atom)
        assert theta is not None
        assert theta.apply_atom(atom) == atom

    @given(atoms(), atoms())
    def test_mgu_is_symmetric_up_to_unifiability(self, left, right):
        assert (mgu(left, right) is None) == (mgu(right, left) is None)

    @given(atoms(), ground_atoms())
    def test_matching_implies_unifiability(self, pattern, target):
        if match_atom(pattern, target) is not None:
            theta = mgu(pattern, target)
            assert theta is not None
            assert theta.apply_atom(pattern) == target

    @given(atoms(), atoms())
    def test_mgu_is_most_general(self, left, right):
        """Any grounding that unifies the atoms factors through the MGU image."""
        theta = mgu(left, right)
        if theta is None:
            return
        # ground both unified atoms with a fixed constant; the results agree
        from repro.logic.terms import Constant

        grounding = Substitution(
            {var: Constant("zz") for var in
             set(theta.apply_atom(left).variables()) | set(theta.apply_atom(right).variables())}
        )
        assert grounding.apply_atom(theta.apply_atom(left)) == grounding.apply_atom(
            theta.apply_atom(right)
        )


class TestRestrictedMGUProperties:
    @given(atoms(), atoms(), variables())
    def test_frozen_variables_are_never_bound(self, left, right, frozen):
        theta = restricted_mgu((left,), (right,), [frozen])
        if theta is not None:
            assert theta.get(frozen) is None

    @given(atoms(), atoms())
    def test_restricted_with_empty_set_equals_plain_mgu(self, left, right):
        plain = mgu(left, right)
        restricted = restricted_mgu((left,), (right,), [])
        assert (plain is None) == (restricted is None)

    @given(atoms(), atoms(), variables())
    def test_restricted_success_implies_plain_success(self, left, right, frozen):
        restricted = restricted_mgu((left,), (right,), [frozen])
        if restricted is not None:
            assert mgu(left, right) is not None


class TestMatchingProperties:
    @given(atoms(), ground_atoms())
    def test_match_produces_exact_image(self, pattern, target):
        match = match_atom(pattern, target)
        if match is not None:
            assert match.apply_atom(pattern) == target

    @given(ground_atoms(), ground_atoms())
    def test_ground_atoms_match_only_if_equal(self, left, right):
        assert (match_atom(left, right) is not None) == (left == right)

    @given(atoms(), constants())
    def test_instances_always_match_their_pattern(self, pattern, constant):
        grounding = Substitution({var: constant for var in pattern.variables()})
        instance = grounding.apply_atom(pattern)
        assert match_atom(pattern, instance) is not None
