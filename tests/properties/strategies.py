"""Hypothesis strategies for terms, atoms, substitutions, and guarded TGDs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Constant, Variable
from repro.logic.tgd import TGD

VARIABLE_NAMES = ("x", "y", "z", "u", "v")
CONSTANT_NAMES = ("a", "b", "c")
PREDICATE_POOL = tuple(
    Predicate(name, arity)
    for name, arity in (("P", 1), ("Q", 1), ("R", 2), ("S", 2), ("T", 3))
)


@st.composite
def variables(draw) -> Variable:
    return Variable(draw(st.sampled_from(VARIABLE_NAMES)))


@st.composite
def constants(draw) -> Constant:
    return Constant(draw(st.sampled_from(CONSTANT_NAMES)))


@st.composite
def terms(draw):
    if draw(st.booleans()):
        return draw(variables())
    return draw(constants())


@st.composite
def atoms(draw, ground: bool = False) -> Atom:
    predicate = draw(st.sampled_from(PREDICATE_POOL))
    if ground:
        args = tuple(draw(constants()) for _ in range(predicate.arity))
    else:
        args = tuple(draw(terms()) for _ in range(predicate.arity))
    return Atom(predicate, args)


@st.composite
def ground_atoms(draw) -> Atom:
    return draw(atoms(ground=True))


@st.composite
def guarded_tgds(draw) -> TGD:
    """A single random guarded TGD built around an explicit guard atom."""
    guard_predicate = draw(st.sampled_from([p for p in PREDICATE_POOL if p.arity >= 1]))
    universal = tuple(
        Variable(f"x{index}") for index in range(guard_predicate.arity)
    )
    guard = Atom(guard_predicate, universal)
    body = [guard]
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        predicate = draw(st.sampled_from(PREDICATE_POOL))
        args = tuple(
            draw(st.sampled_from(universal)) for _ in range(predicate.arity)
        )
        body.append(Atom(predicate, args))
    existential_count = draw(st.integers(min_value=0, max_value=2))
    existential = tuple(Variable(f"y{index}") for index in range(existential_count))
    pool = universal + existential if existential else universal
    head = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        predicate = draw(st.sampled_from(PREDICATE_POOL))
        args = tuple(draw(st.sampled_from(pool)) for _ in range(predicate.arity))
        head.append(Atom(predicate, args))
    return TGD(tuple(body), tuple(head))


@st.composite
def guarded_tgd_sets(draw, max_size: int = 5):
    count = draw(st.integers(min_value=1, max_value=max_size))
    return tuple(draw(guarded_tgds()) for _ in range(count))


@st.composite
def base_instances(draw, max_size: int = 5):
    count = draw(st.integers(min_value=1, max_value=max_size))
    return tuple(draw(ground_atoms()) for _ in range(count))
