"""Differential tests: the indexed saturation loop versus a naive reference.

The production engine retrieves resolution partners through guard-signature
buckets and does redundancy elimination through a set-trie subsumption index.
The reference loop below uses the same inference rules but *linear scans*
everywhere: partners are enumerated by walking the whole worked-off set and
subsumption by checking every retained clause.  On random GTGD workloads the
two must agree.

With redundancy elimination disabled the saturation closure is
order-independent, so the retained clause sets must be *identical*.  With
subsumption enabled the clause sets may legitimately differ by
subsumption-equivalent representatives (processing order decides which
representative survives), so the loops must agree *up to mutual
subsumption*.
"""

from __future__ import annotations

import heapq
import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic.normal_form import normalize
from repro.rewriting import RewritingSettings
from repro.rewriting.exbdr import ExbDR
from repro.rewriting.saturation import Saturation
from repro.rewriting.skdr import SkDR
from repro.rewriting.subsumption import is_syntactic_tautology, subsumes
from repro.workloads.random_gtgds import RandomGTGDConfig, generate_random_gtgds

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

RAW_SETTINGS = RewritingSettings(use_subsumption=False, use_lookahead=False)
SUBSUMING_SETTINGS = RewritingSettings(use_subsumption=True, use_lookahead=False)

CONFIG = RandomGTGDConfig(
    predicate_count=4,
    max_arity=2,
    tgd_count=4,
    max_body_atoms=2,
    max_head_atoms=2,
    existential_probability=0.5,
    constant_count=2,
)


class LinearScanExbDR(ExbDR):
    """ExbDR with partner retrieval replaced by a full worked-off scan."""

    def infer(self, clause, worked_off):
        results = []
        partners = sorted(worked_off, key=str)
        if clause.is_non_full:
            for partner in partners:
                if partner.is_datalog_rule:
                    results.extend(self._combine(clause, partner))
        else:
            for partner in partners:
                if partner.is_non_full:
                    results.extend(self._combine(partner, clause))
        return results


class LinearScanSkDR(SkDR):
    """SkDR with partner retrieval replaced by a full worked-off scan."""

    def infer(self, clause, worked_off):
        results = []
        partners = sorted(worked_off, key=str)
        if self._is_generator(clause):
            for partner in partners:
                results.extend(self._combine(clause, partner))
        for partner in partners:
            if self._is_generator(partner):
                results.extend(self._combine(partner, clause))
        return results


def naive_saturate(inference, sigma, use_subsumption):
    """Algorithm 1 with linear-scan redundancy elimination (no indexes)."""
    inference.prepare(tuple(sigma))
    worked: list = []
    unprocessed: list = []
    queue: list = []
    tick = itertools.count()

    def retained():
        return itertools.chain(worked, unprocessed)

    def admit(clause):
        clause = normalize(clause)
        if is_syntactic_tautology(clause):
            return
        if clause in worked or clause in unprocessed:
            return
        if use_subsumption:
            if any(subsumes(candidate, clause) for candidate in retained()):
                return
            victims = [
                candidate
                for candidate in retained()
                if candidate != clause and subsumes(clause, candidate)
            ]
            for victim in victims:
                if victim in worked:
                    worked.remove(victim)
                    inference.unregister(victim)
                if victim in unprocessed:
                    unprocessed.remove(victim)
        unprocessed.append(clause)
        heapq.heappush(queue, (clause.size, next(tick), clause))

    for clause in inference.initial_clauses(tuple(sigma)):
        admit(clause)
    while queue:
        _, _, clause = heapq.heappop(queue)
        if clause not in unprocessed:
            continue
        unprocessed.remove(clause)
        worked.append(clause)
        inference.register(clause)
        for result in inference.normalize_results(
            inference.infer(clause, set(worked))
        ):
            admit(result)
    return frozenset(worked)


def indexed_saturate(inference_cls, sigma, settings_):
    saturation = Saturation(inference_cls(settings_))
    saturation.run(sigma)
    return frozenset(saturation._worked_off)


def _mutually_subsuming(left: frozenset, right: frozenset) -> bool:
    return all(
        any(subsumes(keeper, clause) for keeper in right) for clause in left
    ) and all(
        any(subsumes(keeper, clause) for keeper in left) for clause in right
    )


class TestIndexedLoopMatchesNaiveReference:
    @RELAXED
    @given(st.integers(min_value=0, max_value=10_000))
    def test_exbdr_closure_identical_without_subsumption(self, seed):
        sigma = generate_random_gtgds(CONFIG, seed=seed)
        naive = naive_saturate(LinearScanExbDR(RAW_SETTINGS), sigma, False)
        indexed = indexed_saturate(ExbDR, sigma, RAW_SETTINGS)
        assert naive == indexed

    @RELAXED
    @given(st.integers(min_value=0, max_value=10_000))
    def test_skdr_closure_identical_without_subsumption(self, seed):
        sigma = generate_random_gtgds(CONFIG, seed=seed)
        naive = naive_saturate(LinearScanSkDR(RAW_SETTINGS), sigma, False)
        indexed = indexed_saturate(SkDR, sigma, RAW_SETTINGS)
        assert naive == indexed

    @RELAXED
    @given(st.integers(min_value=0, max_value=10_000))
    def test_exbdr_retained_equivalent_with_subsumption(self, seed):
        sigma = generate_random_gtgds(CONFIG, seed=seed)
        naive = naive_saturate(
            LinearScanExbDR(SUBSUMING_SETTINGS), sigma, True
        )
        indexed = indexed_saturate(ExbDR, sigma, SUBSUMING_SETTINGS)
        assert _mutually_subsuming(naive, indexed)

    @RELAXED
    @given(st.integers(min_value=0, max_value=10_000))
    def test_skdr_retained_equivalent_with_subsumption(self, seed):
        sigma = generate_random_gtgds(CONFIG, seed=seed)
        naive = naive_saturate(
            LinearScanSkDR(SUBSUMING_SETTINGS), sigma, True
        )
        indexed = indexed_saturate(SkDR, sigma, SUBSUMING_SETTINGS)
        assert _mutually_subsuming(naive, indexed)
