"""Differential properties: delta-driven chase engines vs their naive specs.

The semi-naive, plan-based Skolem chase (:meth:`SkolemChase.run`) must agree
with the retained per-round loop (:meth:`SkolemChase.run_naive_reference`) on
every guarded program and instance — including under depth-bound truncation
and the ``max_facts`` cutoff, where the exact truncated fact sets may differ
but the truncation behaviour must not.  Likewise the dirty-type worklist
guarded engine (:class:`GuardedChaseReasoner`) must agree with the retained
recursive engine (:class:`ReferenceGuardedReasoner`) — the pre-change
whole-tree re-walk — on random guarded programs and on the ontology suite.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.guarded_engine import GuardedChaseReasoner, ReferenceGuardedReasoner
from repro.chase.skolem_chase import SkolemChase
from repro.workloads.instances import generate_instance
from repro.workloads.ontology_suite import generate_suite

from .strategies import base_instances, guarded_tgd_sets

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSkolemChaseEquivalence:
    @RELAXED
    @given(
        guarded_tgd_sets(max_size=5),
        base_instances(max_size=6),
        st.integers(min_value=0, max_value=3),
    )
    def test_semi_naive_equals_naive_reference(self, tgds, facts, depth):
        chase = SkolemChase(tgds, max_term_depth=depth)
        semi = chase.run(facts)
        naive = chase.run_naive_reference(facts)
        assert semi.facts == naive.facts
        assert semi.saturated == naive.saturated

    @RELAXED
    @given(
        guarded_tgd_sets(max_size=4),
        base_instances(max_size=6),
        st.integers(min_value=1, max_value=12),
    )
    def test_max_facts_cutoff_parity(self, tgds, facts, max_facts):
        # a truncated run's exact fact set is enumeration-order dependent,
        # but *whether* the cutoff fires is a function of the closure size
        # alone: it fires iff adding some new fact pushes the count past the
        # cap, i.e. iff |closure| > max(max_facts, |seed|).  Both engines
        # must truncate on exactly the same inputs — and agree exactly
        # whenever neither truncates.
        seed_size = len(set(facts))
        full = SkolemChase(tgds, max_term_depth=2).run(facts)
        expected_truncated = len(full.facts) > max(max_facts, seed_size)
        chase = SkolemChase(tgds, max_term_depth=2, max_facts=max_facts)
        semi = chase.run(facts)
        naive = chase.run_naive_reference(facts)
        if expected_truncated:
            assert not semi.saturated and not naive.saturated
            assert len(semi.facts) > max_facts
            assert len(naive.facts) > max_facts
        else:
            assert semi.facts == naive.facts == full.facts
            assert semi.saturated == naive.saturated


class TestGuardedEngineEquivalence:
    @RELAXED
    @given(guarded_tgd_sets(max_size=5), base_instances(max_size=5))
    def test_worklist_equals_recursive_reference(self, tgds, facts):
        worklist = GuardedChaseReasoner(tgds).entailed_base_facts(facts)
        recursive = ReferenceGuardedReasoner(tgds).entailed_base_facts(facts)
        assert worklist == recursive

    def test_agreement_on_the_ontology_suite(self):
        suite = generate_suite(count=3, seed=7, min_axioms=8, max_axioms=16)
        for item in suite:
            instance = generate_instance(
                item.tgds, fact_count=25, constant_count=8, seed=int(item.identifier)
            )
            worklist = GuardedChaseReasoner(item.tgds, max_types=200_000)
            reference = ReferenceGuardedReasoner(item.tgds, max_types=200_000)
            assert worklist.entailed_base_facts(instance) == (
                reference.entailed_base_facts(instance)
            ), item.identifier
