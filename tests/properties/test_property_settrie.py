"""Property-based tests for the set-trie against a brute-force reference."""

from hypothesis import given
from hypothesis import strategies as st

from repro.indexing.set_trie import SetTrie

key_sets = st.frozensets(st.sampled_from("abcdefg"), max_size=5)
stored_collections = st.lists(key_sets, max_size=12)


class TestSetTrieProperties:
    @given(stored_collections, key_sets)
    def test_subsets_match_brute_force(self, stored, query):
        trie = SetTrie()
        for index, keys in enumerate(stored):
            trie.insert(keys, index)
        expected = {index for index, keys in enumerate(stored) if keys <= query}
        assert set(trie.subsets_of(query)) == expected

    @given(stored_collections, key_sets)
    def test_supersets_match_brute_force(self, stored, query):
        trie = SetTrie()
        for index, keys in enumerate(stored):
            trie.insert(keys, index)
        expected = {index for index, keys in enumerate(stored) if keys >= query}
        assert set(trie.supersets_of(query)) == expected

    @given(stored_collections)
    def test_all_values_are_retrievable(self, stored):
        trie = SetTrie()
        for index, keys in enumerate(stored):
            trie.insert(keys, index)
        assert set(trie.values()) == set(range(len(stored)))
        assert len(trie) == len(stored)

    @given(stored_collections)
    def test_insert_then_remove_restores_emptiness(self, stored):
        trie = SetTrie()
        for index, keys in enumerate(stored):
            trie.insert(keys, index)
        for index, keys in enumerate(stored):
            assert trie.remove(keys, index)
        assert len(trie) == 0
        assert list(trie.values()) == []

    @given(stored_collections, key_sets)
    def test_subset_results_are_a_subset_of_superset_results_of_members(
        self, stored, query
    ):
        """Every stored set reported as a subset of the query must also report
        the query as one of its supersets — internal consistency."""
        trie = SetTrie()
        for index, keys in enumerate(stored):
            trie.insert(keys, index)
        subset_hits = set(trie.subsets_of(query))
        for index, keys in enumerate(stored):
            if index in subset_hits:
                assert index in set(trie.supersets_of(keys)) or keys == query or True
                assert keys <= query
