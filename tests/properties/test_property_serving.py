"""Hypothesis properties for the serving layer's consistency story.

The headline property (the one the ISSUE demands): **no interleaving of
cached answers and mutations can serve a stale result**.  Hypothesis draws
random schedules of concurrent queries and ``add``/``retract`` mutations,
drives them through a real :class:`~repro.serve.server.ReasoningServer`
(micro-batching, answer cache, mutation barriers — the whole pipeline),
and checks every served answer against a fresh single-threaded session
replaying the server's own op log up to the generation stamped on the
response.  A second, model-based property pins the same invariant on the
:class:`~repro.serve.cache.AnswerCache` in isolation.

A third property re-runs the headline invariant under *injected worker
kills*: the same random schedules drive a process-pool server whose
:class:`~repro.serve.faults.FaultPlan` deterministically ``os._exit``\\ s
worker processes at drawn dispatch indexes.  With at most three kills and
the default retry budget of three, supervision must recover every task —
so the property additionally states that no answer is *lost*: every
request still gets an ``ok`` response, mutations still apply exactly once
(dense generations), and every answer still matches the oracle.  Each
example boots a real worker pool, so this one runs few examples — the
broad schedule coverage comes from the kill-free property above.
"""

import asyncio

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import KnowledgeBase
from repro.datalog.query import parse_query
from repro.logic.parser import parse_facts, parse_program
from repro.serve.cache import AnswerCache
from repro.serve.protocol import encode_answers
from repro.serve.server import ReasoningServer, ServedKB

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SIGMA = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

SEED_FACTS = [
    "ACEquipment(sw1).",
    "ACEquipment(sw2).",
    "hasTerminal(sw1, trm1).",
    "ACTerminal(trm1).",
]

QUERY_TEXTS = [
    "Equipment(?x)",
    "Terminal(?x)",
    "ACEquipment(?x)",
    "ACEquipment(?x), hasTerminal(?x, ?y)",
]

#: facts the mutation schedule may add or retract (retracting one that is
#: absent is a legal no-op mutation — it still bumps the generation)
MUTABLE_FACTS = [
    "ACEquipment(sw1).",
    "ACEquipment(sw9).",
    "hasTerminal(sw2, trm2).",
    "ACTerminal(trm2).",
]

_KB = None


def compiled_kb():
    global _KB
    if _KB is None:
        _KB = KnowledgeBase.compile(parse_program(SIGMA).tgds)
    return _KB


# one schedule = waves of operations; operations inside a wave are issued
# concurrently (asyncio.gather), waves run back to back
operation = st.one_of(
    st.sampled_from([("query", text) for text in QUERY_TEXTS]),
    st.sampled_from([("query", text) for text in QUERY_TEXTS]),
    st.sampled_from(
        [("add", fact) for fact in MUTABLE_FACTS]
        + [("retract", fact) for fact in MUTABLE_FACTS]
    ),
)
schedules = st.lists(
    st.lists(operation, min_size=1, max_size=4), min_size=1, max_size=4
)


def replay(op_log):
    """The base-fact lines after applying a prefix of the server's op log."""
    lines = list(SEED_FACTS)
    for kind, fact in op_log:
        if kind == "add":
            if fact not in lines:
                lines.append(fact)
        else:
            lines = [line for line in lines if line != fact]
    return lines


@RELAXED
@given(schedule=schedules)
def test_no_interleaving_of_cached_answers_and_mutations_serves_stale_results(
    schedule,
):
    kb = compiled_kb()

    async def drive():
        server = ReasoningServer(
            [ServedKB("cim", kb, parse_facts("\n".join(SEED_FACTS)))],
            cache_size=8,  # small enough that eviction happens too
        )
        await server.start()
        try:
            clients = [server.local_client() for _ in range(3)]
            served = []
            mutations = []

            async def run_op(slot, kind, payload):
                client = clients[slot % len(clients)]
                if kind == "query":
                    response = await client.query(payload)
                    served.append(response)
                elif kind == "add":
                    mutations.append(await client.add_facts(payload))
                else:
                    mutations.append(await client.retract_facts(payload))

            for wave in schedule:
                await asyncio.gather(
                    *[
                        run_op(slot, kind, payload)
                        for slot, (kind, payload) in enumerate(wave)
                    ]
                )
            return served, mutations
        finally:
            await server.shutdown()

    served, mutations = asyncio.run(drive())

    # reconstruct the server's op log from the generation each mutation
    # response was stamped with: generation g means "the g-th op applied"
    op_log = {}
    for response, (kind, payload) in zip(
        sorted(mutations, key=lambda r: r["generation"]),
        [
            (kind, payload)
            for wave in schedule
            for kind, payload in wave
            if kind != "query"
        ],
    ):
        assert response["ok"] is True
        op_log[response["generation"]] = (kind, payload)
    ordered_ops = [op_log[g] for g in sorted(op_log)]
    assert sorted(op_log) == list(range(1, len(ordered_ops) + 1))

    # every served answer must equal a fresh single-threaded session's
    # answer over the base facts as of the response's stamped generation
    oracle_cache = {}
    for response in served:
        generation = response["generation"]
        if generation not in oracle_cache:
            lines = replay(ordered_ops[:generation])
            answers = kb.answer_many(
                [parse_query(text) for text in QUERY_TEXTS],
                parse_facts("\n".join(lines)),
            )
            oracle_cache[generation] = {
                text: encode_answers(answer_set)
                for text, answer_set in zip(QUERY_TEXTS, answers)
            }
        assert response["answers"] == oracle_cache[generation][response["query"]], (
            f"stale answer for {response['query']!r} at generation {generation}"
        )


# ----------------------------------------------------------------------
# the same invariant under injected worker kills (supervision recovery)
# ----------------------------------------------------------------------
#: each pool boot is expensive; few examples, the kill-free property above
#: carries the schedule coverage
KILL_RELAXED = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: <= 3 kills with the default max_task_retries=3 guarantees every task
#: survives (a task gets 4 attempts; 3 kills can at most fell 3 of them),
#: so "no lost answers" is a hard invariant, not a probabilistic one
kill_indexes = st.sets(st.integers(min_value=0, max_value=10), max_size=3)


@KILL_RELAXED
@given(schedule=schedules, kills=kill_indexes)
def test_no_interleaving_of_worker_kills_and_mutations_serves_stale_or_lost_results(
    schedule, kills
):
    from repro.serve.faults import FaultPlan

    kb = compiled_kb()
    plan = FaultPlan(kill_on_tasks=kills)

    async def drive():
        server = ReasoningServer(
            [ServedKB("cim", kb, parse_facts("\n".join(SEED_FACTS)))],
            workers=1,
            fault_plan=plan,
        )
        await server.start()
        try:
            clients = [server.local_client() for _ in range(3)]
            served = []
            mutations = []

            async def run_op(slot, kind, payload):
                client = clients[slot % len(clients)]
                if kind == "query":
                    served.append(await client.query(payload))
                elif kind == "add":
                    mutations.append(await client.add_facts(payload))
                else:
                    mutations.append(await client.retract_facts(payload))

            for wave in schedule:
                await asyncio.gather(
                    *[
                        run_op(slot, kind, payload)
                        for slot, (kind, payload) in enumerate(wave)
                    ]
                )
            return served, mutations
        finally:
            await server.shutdown()

    served, mutations = asyncio.run(drive())

    # no lost answers: every request produced an ok response despite the
    # kills (client helpers raise on error responses, gather propagates)
    total_ops = sum(len(wave) for wave in schedule)
    assert len(served) + len(mutations) == total_ops
    for response in served + mutations:
        assert response["ok"] is True

    # mutations applied exactly once each: the stamped generations are
    # dense 1..N even when a mutation task's first dispatch was killed
    op_log = {}
    for response, (kind, payload) in zip(
        sorted(mutations, key=lambda r: r["generation"]),
        [
            (kind, payload)
            for wave in schedule
            for kind, payload in wave
            if kind != "query"
        ],
    ):
        op_log[response["generation"]] = (kind, payload)
    ordered_ops = [op_log[g] for g in sorted(op_log)]
    assert sorted(op_log) == list(range(1, len(ordered_ops) + 1))

    # and no stale answers: every served answer matches a fresh session at
    # its stamped generation, recoveries included
    oracle_cache = {}
    for response in served:
        generation = response["generation"]
        if generation not in oracle_cache:
            lines = replay(ordered_ops[:generation])
            answers = kb.answer_many(
                [parse_query(text) for text in QUERY_TEXTS],
                parse_facts("\n".join(lines)),
            )
            oracle_cache[generation] = {
                text: encode_answers(answer_set)
                for text, answer_set in zip(QUERY_TEXTS, answers)
            }
        assert response["answers"] == oracle_cache[generation][response["query"]], (
            f"stale answer for {response['query']!r} at generation "
            f"{generation} (injected kills: {plan.injected['kills']})"
        )


# ----------------------------------------------------------------------
# the same invariant on the cache alone, against a reference model
# ----------------------------------------------------------------------
cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 3), st.integers(0, 5)),
        st.tuples(st.just("get"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("invalidate"), st.integers(0, 1), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


@RELAXED
@given(ops=cache_ops)
def test_answer_cache_never_returns_answers_from_a_superseded_generation(ops):
    cache = AnswerCache(capacity=3)
    generations = {"kb0": 0, "kb1": 0}
    model = {}  # (kb, fp) -> (generation, payload) of the last accepted put

    for kind, a, b in ops:
        kb_key = f"kb{a % 2}"
        fingerprint = f"q{a}"
        if kind == "put":
            payload = [[f"gen{generations[kb_key]}", f"v{b}"]]
            accepted = cache.put(kb_key, fingerprint, generations[kb_key], payload)
            assert accepted, "a put at the current generation must be accepted"
            model[(kb_key, fingerprint)] = (generations[kb_key], payload)
            # a put stamped with any *older* generation must be refused
            if generations[kb_key] > 0:
                assert not cache.put(
                    kb_key, fingerprint, generations[kb_key] - 1, [["stale"]]
                )
        elif kind == "get":
            answers = cache.get(kb_key, fingerprint)
            if answers is not None:
                generation, payload = model[(kb_key, fingerprint)]
                assert generation == generations[kb_key], (
                    "served an answer cached at a superseded generation"
                )
                assert answers == payload
        else:
            generations[kb_key] += 1
            assert cache.invalidate(kb_key) == generations[kb_key]

    for (kb_key, fingerprint), (generation, payload) in model.items():
        answers = cache.get(kb_key, fingerprint)
        if answers is not None:
            assert generation == generations[kb_key]
            assert answers == payload
