"""Property-based tests for the hash-consing invariants of the logic substrate.

The saturation hot path relies on two guarantees of the interned
constructors (see ``repro.logic.interning``):

* *structural equality is identity* — building the same term/atom/clause
  twice, through any construction path, yields the very same object;
* *operations preserve interning* — substitution application and
  normalization return interned objects, so their results also enjoy
  equality-is-identity.
"""

import copy
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom, Predicate
from repro.logic.normal_form import normalize_tgd
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, FunctionSymbol, FunctionTerm, Variable
from repro.logic.tgd import TGD

from .strategies import atoms, constants, guarded_tgds, variables


def _rebuild_term(term):
    """Reconstruct a term from scratch (fresh constructor calls throughout)."""
    if isinstance(term, Variable):
        return Variable(str(term.name))
    if isinstance(term, Constant):
        return Constant(str(term.name))
    if isinstance(term, FunctionTerm):
        symbol = FunctionSymbol(
            str(term.symbol.name), term.symbol.arity, term.symbol.is_skolem
        )
        return FunctionTerm(symbol, tuple(_rebuild_term(arg) for arg in term.args))
    raise AssertionError(f"unexpected term {term!r}")


def _rebuild_atom(atom: Atom) -> Atom:
    predicate = Predicate(str(atom.predicate.name), atom.predicate.arity)
    return Atom(predicate, tuple(_rebuild_term(arg) for arg in atom.args))


class TestEqualityIsIdentity:
    @given(atoms())
    def test_rebuilding_an_atom_returns_the_same_object(self, atom):
        rebuilt = _rebuild_atom(atom)
        assert rebuilt == atom
        assert rebuilt is atom

    @given(variables(), constants())
    def test_rebuilding_terms_returns_the_same_objects(self, var, const):
        assert Variable(str(var.name)) is var
        assert Constant(str(const.name)) is const

    @given(guarded_tgds())
    def test_rebuilding_a_tgd_returns_the_same_object(self, tgd):
        rebuilt = TGD(
            tuple(_rebuild_atom(atom) for atom in tgd.body),
            tuple(_rebuild_atom(atom) for atom in tgd.head),
        )
        assert rebuilt == tgd
        assert rebuilt is tgd

    @given(atoms(), atoms())
    def test_distinct_structures_stay_distinct(self, left, right):
        # identity must track structural equality in both directions
        assert (left == right) == (left is right)


class TestSerializationRoundTrips:
    """Pickle and deepcopy must survive interning (and re-intern on load)."""

    @given(atoms())
    def test_pickle_round_trip_returns_the_interned_atom(self, atom):
        assert pickle.loads(pickle.dumps(atom)) is atom

    @given(guarded_tgds())
    def test_pickle_round_trip_returns_the_interned_tgd(self, tgd):
        assert pickle.loads(pickle.dumps(tgd)) is tgd

    @given(atoms())
    def test_deepcopy_returns_the_interned_atom(self, atom):
        # immutable interned values behave like ints/strs under deepcopy
        assert copy.deepcopy(atom) is atom

    @given(guarded_tgds())
    def test_deepcopy_returns_the_interned_tgd(self, tgd):
        assert copy.deepcopy(tgd) is tgd


class TestOperationsPreserveInterning:
    @given(atoms(), variables(), constants())
    def test_substitution_application_returns_interned_atoms(
        self, atom, var, const
    ):
        substitution = Substitution({var: const})
        once = substitution.apply_atom(atom)
        again = substitution.apply_atom(atom)
        assert once is again
        assert once is _rebuild_atom(once)

    @given(atoms(), variables(), variables())
    def test_renaming_substitution_preserves_interning(self, atom, source, target):
        substitution = Substitution({source: target})
        image = substitution.apply_atom(atom)
        assert image is _rebuild_atom(image)

    @given(guarded_tgds())
    def test_normalization_is_idempotent_and_interned(self, tgd):
        normalized = normalize_tgd(tgd)
        assert normalize_tgd(normalized) is normalized
        # normalizing a structurally identical clause gives the identical object
        assert normalize_tgd(TGD(tgd.body, tgd.head)) is normalized

    @given(guarded_tgds())
    def test_rename_apart_is_cached_and_invertible_structure(self, tgd):
        renamed_once = tgd.rename_apart("p")
        renamed_again = tgd.rename_apart("p")
        assert renamed_once is renamed_again
        if tgd.variables():
            assert renamed_once is not tgd
        assert len(renamed_once.body) == len(tgd.body)
        assert len(renamed_once.head) == len(tgd.head)
