"""Property-based tests for the Datalog engine and the chase oracles."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase import bounded_certain_base_facts, certain_base_facts
from repro.datalog import DatalogProgram, materialize
from repro.logic.instance import Instance
from repro.logic.rules import datalog_tgd_to_rule
from repro.logic.substitution import Substitution
from repro.unification.matching import match_conjunction_into_set

from .strategies import base_instances, guarded_tgd_sets

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _naive_fixpoint(rules, facts):
    """Reference implementation: naive bottom-up evaluation."""
    known = set(facts)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            for match in match_conjunction_into_set(rule.body, tuple(known)):
                fact = match.apply_atom(rule.head)
                if fact not in known:
                    known.add(fact)
                    changed = True
    return frozenset(known)


class TestMaterializationProperties:
    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=4))
    def test_semi_naive_agrees_with_naive_evaluation(self, tgds, facts):
        datalog_rules = [
            datalog_tgd_to_rule(tgd) for tgd in tgds if tgd.is_datalog_rule
        ]
        instance = Instance(facts)
        expected = _naive_fixpoint(datalog_rules, instance)
        result = materialize(DatalogProgram(datalog_rules), instance)
        assert result.facts() == expected

    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=4))
    def test_materialization_contains_the_input(self, tgds, facts):
        datalog_rules = [
            datalog_tgd_to_rule(tgd) for tgd in tgds if tgd.is_datalog_rule
        ]
        instance = Instance(facts)
        result = materialize(DatalogProgram(datalog_rules), instance)
        assert set(instance) <= result.facts()

    @RELAXED
    @given(guarded_tgd_sets(max_size=4), base_instances(max_size=4))
    def test_materialization_is_idempotent(self, tgds, facts):
        datalog_rules = [
            datalog_tgd_to_rule(tgd) for tgd in tgds if tgd.is_datalog_rule
        ]
        program = DatalogProgram(datalog_rules)
        first = materialize(program, Instance(facts))
        second = materialize(program, first.facts())
        assert second.facts() == first.facts()
        assert second.derived_count == 0


class TestOracleProperties:
    @RELAXED
    @given(guarded_tgd_sets(max_size=3), base_instances(max_size=3))
    def test_certain_facts_contain_the_base_instance_facts(self, tgds, facts):
        instance = Instance(facts)
        certain = certain_base_facts(instance, tgds)
        assert frozenset(facts) <= certain

    @RELAXED
    @given(guarded_tgd_sets(max_size=3), base_instances(max_size=3))
    def test_bounded_skolem_chase_under_approximates_the_oracle(self, tgds, facts):
        instance = Instance(facts)
        certain = certain_base_facts(instance, tgds)
        for depth in (0, 2):
            assert bounded_certain_base_facts(instance, tgds, depth) <= certain

    @RELAXED
    @given(guarded_tgd_sets(max_size=3), base_instances(max_size=3))
    def test_oracle_is_monotone_in_the_tgds(self, tgds, facts):
        instance = Instance(facts)
        smaller = certain_base_facts(instance, tgds[:-1]) if len(tgds) > 1 else frozenset(facts)
        larger = certain_base_facts(instance, tgds)
        assert smaller <= larger


class TestChurnProperties:
    """Differential: DRed sessions versus from-scratch re-materialization."""

    @RELAXED
    @given(
        guarded_tgd_sets(max_size=4),
        base_instances(max_size=6),
        st.lists(
            st.tuples(
                st.booleans(),
                st.lists(st.integers(min_value=0, max_value=63), max_size=4),
            ),
            max_size=6,
        ),
    )
    def test_add_retract_interleavings_match_rebuild(self, tgds, facts, script):
        """Any add/retract interleaving lands on the rebuild-from-base fixpoint.

        The script may retract facts never added and facts present only as
        derivations — both are ignored per the documented contract, so the
        asserted-set model below only shrinks by facts it actually holds.
        """
        from repro.datalog import ReasoningSession

        datalog_rules = [
            datalog_tgd_to_rule(tgd) for tgd in tgds if tgd.is_datalog_rule
        ]
        pool = sorted(set(facts), key=str)
        if not pool:
            return
        program = DatalogProgram(datalog_rules)
        session = ReasoningSession(program)
        asserted = set()
        for is_add, indices in script:
            batch = [pool[index % len(pool)] for index in indices]
            if is_add:
                session.add_facts(batch)
                asserted.update(batch)
            else:
                session.retract_facts(batch)
                asserted.difference_update(batch)
            assert session.store.base_facts() == frozenset(asserted)
            expected = materialize(program, sorted(asserted, key=str))
            assert session.facts() == expected.facts()
