"""Integration tests that replay the paper's worked examples end to end."""

import pytest

from repro import KnowledgeBase, parse_program
from repro.chase import certain_base_facts
from repro.datalog import materialize
from repro.logic.atoms import Predicate
from repro.logic.normal_form import normalize_rule, normalize_tgd
from repro.logic.rules import datalog_tgd_to_rule
from repro.logic.terms import Constant
from repro.rewriting import available_algorithms, rewrite
from repro.workloads.families import (
    cim_example,
    cim_shortcut,
    running_example,
    running_example_shortcuts,
)

ALGORITHMS = ("exbdr", "skdr", "hypdr")


class TestExample11And12:
    """The CIM data-integration scenario from the introduction."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_both_switches_are_classified_as_equipment(self, algorithm):
        tgds, instance = cim_example()
        kb = KnowledgeBase.compile(tgds, algorithm=algorithm)
        equipment = Predicate("Equipment", 1)
        facts = kb.certain_base_facts(instance)
        assert equipment(Constant("sw1")) in facts
        assert equipment(Constant("sw2")) in facts

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_shortcut_rule_7_is_part_of_the_rewriting(self, algorithm):
        """Example 1.2: ACEquipment(x) → Equipment(x) belongs to rew(Σ)."""
        tgds, _ = cim_example()
        result = rewrite(tgds, algorithm=algorithm)
        target = normalize_rule(datalog_tgd_to_rule(cim_shortcut()))
        assert any(normalize_rule(rule) == target for rule in result.datalog_rules)

    def test_rewriting_of_example_1_2_answers_like_the_paper(self):
        """The program of rules (2), (3), (7) is a rewriting of GTGDs (1)–(4)."""
        paper_rewriting = parse_program(
            """
            ACTerminal(?x) -> Terminal(?x).
            hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
            ACEquipment(?x) -> Equipment(?x).
            """
        )
        tgds, instance = cim_example()
        expected = certain_base_facts(instance, tgds)
        facts = {
            fact
            for fact in materialize(paper_rewriting.tgds, instance).facts()
            if fact.is_base_fact
        }
        assert facts == expected


class TestExample43And46:
    """The running example: GTGDs (8)–(13), shortcuts (14)–(16)."""

    def test_oracle_derives_h_of_a(self):
        tgds, instance = running_example()
        assert Predicate("H", 1)(Constant("a")) in certain_base_facts(instance, tgds)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_shortcuts_14_to_16_are_derived(self, algorithm):
        tgds, _ = running_example()
        result = rewrite(tgds, algorithm=algorithm)
        derived = {normalize_rule(rule) for rule in result.datalog_rules}
        for shortcut in running_example_shortcuts():
            assert normalize_rule(datalog_tgd_to_rule(shortcut)) in derived

    def test_example_4_6_program_is_a_rewriting(self):
        """Shortcuts (14)–(16) plus the input Datalog rules form a rewriting."""
        tgds, instance = running_example()
        datalog_part = [tgd for tgd in tgds if tgd.is_datalog_rule]
        program = list(running_example_shortcuts()) + datalog_part
        expected = certain_base_facts(instance, tgds)
        facts = {
            fact
            for fact in materialize(program, instance).facts()
            if fact.is_base_fact
        }
        assert facts == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rewriting_answers_match_on_larger_instances(self, algorithm):
        tgds, _ = running_example()
        instance = parse_program(
            "A(a, b). A(b, c). A(c, c). B(d, e). D(d, e). E(f)."
        ).instance
        kb = KnowledgeBase.compile(tgds, algorithm=algorithm)
        assert kb.certain_base_facts(instance) == certain_base_facts(instance, tgds)


class TestExample56And511Artifacts:
    """Intermediate artefacts highlighted in Examples 5.6 and 5.11."""

    def test_exbdr_derives_tgd_17(self):
        """ExbDR combines (8) and (9) into (17)."""
        from repro.rewriting.exbdr import ExbDR
        from repro.rewriting.saturation import Saturation
        from repro.logic.parser import parse_tgd

        tgds, _ = running_example()
        saturation = Saturation(ExbDR())
        saturation.run(tgds)
        tgd17 = parse_tgd(
            "A(?x1, ?x2) -> exists ?y. B(?x1, ?y), C(?x1, ?y), D(?x1, ?y)."
        )
        normalized = {normalize_tgd(clause) for clause in saturation._worked_off}
        assert normalize_tgd(tgd17) in normalized

    def test_skdr_derives_rule_27(self):
        """SkDR combines the Skolemization of (8) with (9) into rule (27)."""
        from repro.rewriting.skdr import SkDR
        from repro.rewriting.saturation import Saturation

        tgds, _ = running_example()
        saturation = Saturation(SkDR())
        saturation.run(tgds)
        d_headed_skolem_rules = [
            rule
            for rule in saturation._worked_off
            if rule.head.predicate.name == "D" and not rule.head.is_function_free
        ]
        assert d_headed_skolem_rules, "rule (27) should be derived"

    def test_hypdr_avoids_dead_end_rule_29(self):
        """HypDR never derives rules whose body contains Skolem terms (like (29))."""
        from repro.rewriting.hypdr import HypDR
        from repro.rewriting.saturation import Saturation

        tgds, _ = running_example()
        saturation = Saturation(HypDR())
        saturation.run(tgds)
        assert all(rule.body_is_skolem_free for rule in saturation._worked_off)


class TestAllAlgorithmsAgreeOnAllExamples:
    @pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
    def test_every_algorithm_is_a_rewriting_on_the_running_example(self, algorithm):
        tgds, instance = running_example()
        expected = certain_base_facts(instance, tgds)
        kb = KnowledgeBase.compile(tgds, algorithm=algorithm)
        assert kb.certain_base_facts(instance) == expected
