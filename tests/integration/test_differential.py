"""Differential testing: every algorithm against the chase oracle on random inputs.

These are the heavyweight correctness tests.  The seeds are fixed so the run
time stays predictable; the generator parameters are chosen so the inputs
exercise existential chains, constants inside TGDs, and multi-atom bodies.
"""

import pytest

from repro import KnowledgeBase
from repro.chase import certain_base_facts
from repro.rewriting import RewritingSettings
from repro.workloads.random_gtgds import (
    RandomGTGDConfig,
    generate_random_gtgds,
    generate_random_instance,
)

ALGORITHMS = ("exbdr", "skdr", "hypdr")


def _check_seed(seed: int, config: RandomGTGDConfig, algorithms=ALGORITHMS,
                settings=None) -> None:
    tgds = generate_random_gtgds(config)
    instance = generate_random_instance(tgds, seed=seed, fact_count=5, constant_count=3)
    expected = certain_base_facts(instance, tgds)
    for algorithm in algorithms:
        kb = KnowledgeBase.compile(tgds, algorithm=algorithm, settings=settings)
        actual = kb.certain_base_facts(instance)
        assert actual == expected, (
            f"seed {seed}, algorithm {algorithm}: "
            f"missing {expected - actual}, extra {actual - expected}"
        )


class TestSmallRandomInputs:
    @pytest.mark.parametrize("seed", range(10))
    def test_default_configuration(self, seed):
        config = RandomGTGDConfig(seed=seed, tgd_count=6, predicate_count=5)
        _check_seed(seed, config)


class TestExistentialHeavyInputs:
    @pytest.mark.parametrize("seed", range(200, 208))
    def test_many_existentials(self, seed):
        config = RandomGTGDConfig(
            seed=seed,
            tgd_count=8,
            predicate_count=5,
            existential_probability=0.7,
            max_body_atoms=2,
            max_head_atoms=3,
        )
        _check_seed(seed, config)


class TestWiderBodies:
    @pytest.mark.parametrize("seed", range(300, 306))
    def test_three_atom_bodies(self, seed):
        config = RandomGTGDConfig(
            seed=seed,
            tgd_count=8,
            predicate_count=5,
            existential_probability=0.5,
            max_body_atoms=3,
            max_head_atoms=2,
        )
        _check_seed(seed, config)


class TestConstantsInDependencies:
    @pytest.mark.parametrize("seed", range(400, 406))
    def test_constants_flow_out_of_subtrees(self, seed):
        config = RandomGTGDConfig(
            seed=seed,
            tgd_count=7,
            predicate_count=4,
            existential_probability=0.5,
            constant_count=3,
        )
        _check_seed(seed, config)


class TestAblationsRemainCorrect:
    @pytest.mark.parametrize("seed", (500, 501, 502))
    def test_without_subsumption(self, seed):
        config = RandomGTGDConfig(seed=seed, tgd_count=6, predicate_count=5)
        _check_seed(
            seed, config, settings=RewritingSettings(use_subsumption=False)
        )

    @pytest.mark.parametrize("seed", (510, 511, 512))
    def test_without_lookahead(self, seed):
        config = RandomGTGDConfig(seed=seed, tgd_count=6, predicate_count=5)
        _check_seed(
            seed, config, settings=RewritingSettings(use_lookahead=False)
        )

    @pytest.mark.parametrize("seed", (520, 521))
    def test_with_exact_subsumption(self, seed):
        config = RandomGTGDConfig(seed=seed, tgd_count=6, predicate_count=5)
        _check_seed(
            seed, config, settings=RewritingSettings(exact_subsumption=True)
        )


class TestFullDROnTinyInputs:
    """FullDR enumerates bounded substitutions rather than MGUs, so even small
    inputs are expensive (Example E.3); the differential check therefore uses
    very small dependency sets without constants."""

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_fulldr_matches_oracle(self, seed):
        config = RandomGTGDConfig(
            seed=seed,
            tgd_count=3,
            predicate_count=3,
            existential_probability=0.4,
            max_body_atoms=2,
            max_head_atoms=1,
            constant_count=0,
        )
        _check_seed(seed, config, algorithms=("fulldr",))


class TestOntologySuiteInputs:
    @pytest.mark.parametrize("index", (0, 1))
    def test_algorithms_agree_on_generated_ontologies(self, index):
        """On suite inputs (too big for the oracle) the three algorithms must
        at least agree with each other."""
        from repro.workloads.ontology_suite import generate_suite
        from repro.workloads.instances import generate_instance

        suite = generate_suite(count=2, seed=21, min_axioms=12, max_axioms=25)
        item = suite[index]
        instance = generate_instance(item.tgds, fact_count=30, constant_count=10, seed=index)
        answers = {}
        for algorithm in ALGORITHMS:
            kb = KnowledgeBase.compile(item.tgds, algorithm=algorithm)
            answers[algorithm] = kb.certain_base_facts(instance)
        assert answers["exbdr"] == answers["skdr"] == answers["hypdr"]
