"""Tests for the command-line interface."""

import pytest

from repro.cli import main

CIM_DEPENDENCIES = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

CIM_FACTS = """
ACEquipment(sw1).
ACEquipment(sw2).
hasTerminal(sw1, trm1).
ACTerminal(trm1).
"""


@pytest.fixture
def dependency_file(tmp_path):
    path = tmp_path / "deps.gtgd"
    path.write_text(CIM_DEPENDENCIES, encoding="utf-8")
    return path


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "data.facts"
    path.write_text(CIM_FACTS, encoding="utf-8")
    return path


class TestRewriteCommand:
    def test_rewrite_to_stdout(self, dependency_file, capsys):
        exit_code = main(["rewrite", str(dependency_file), "--algorithm", "hypdr"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert ":-" in captured.out
        assert "Equipment(?" in captured.out
        assert "Datalog rules" in captured.err

    def test_rewrite_to_file(self, dependency_file, tmp_path, capsys):
        output = tmp_path / "rewriting.dl"
        exit_code = main(
            ["rewrite", str(dependency_file), "-o", str(output), "--algorithm", "exbdr"]
        )
        assert exit_code == 0
        text = output.read_text(encoding="utf-8")
        assert "ACEquipment" in text
        assert ":-" in text

    def test_rewrite_with_ablation_flags(self, dependency_file, capsys):
        exit_code = main(
            [
                "rewrite",
                str(dependency_file),
                "--no-subsumption",
                "--no-lookahead",
                "--algorithm",
                "skdr",
            ]
        )
        assert exit_code == 0

    def test_rewrite_timeout_gives_nonzero_exit(self, dependency_file, capsys):
        exit_code = main(["rewrite", str(dependency_file), "--timeout", "0"])
        assert exit_code == 2

    def test_unknown_algorithm_rejected(self, dependency_file):
        with pytest.raises(SystemExit):
            main(["rewrite", str(dependency_file), "--algorithm", "magic"])


class TestMaterializeCommand:
    def test_materialize_prints_all_facts(self, dependency_file, facts_file, capsys):
        exit_code = main(["materialize", str(dependency_file), str(facts_file)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Equipment(sw1)." in captured.out
        assert "Equipment(sw2)." in captured.out
        assert "input facts" in captured.err


class TestEntailsCommand:
    def test_entailed_fact(self, dependency_file, facts_file, capsys):
        exit_code = main(
            ["entails", str(dependency_file), str(facts_file), "Equipment(sw2)"]
        )
        assert exit_code == 0
        assert "entailed" in capsys.readouterr().out

    def test_non_entailed_fact(self, dependency_file, facts_file, capsys):
        exit_code = main(
            ["entails", str(dependency_file), str(facts_file), "Equipment(trm1)"]
        )
        assert exit_code == 1
        assert "not entailed" in capsys.readouterr().out


QUERIES = """
% the introduction's question: list all known equipment
Equipment(?x)
Equipment(?x), hasTerminal(?x, ?y)
"""


@pytest.fixture
def queries_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text(QUERIES, encoding="utf-8")
    return path


@pytest.fixture
def kb_file(dependency_file, tmp_path):
    path = tmp_path / "cim.kb.json"
    assert main(["compile", str(dependency_file), "-o", str(path)]) == 0
    return path


class TestCompileCommand:
    def test_compile_writes_versioned_kb(self, dependency_file, tmp_path, capsys):
        import json

        output = tmp_path / "kb.json"
        exit_code = main(["compile", str(dependency_file), "-o", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "saved to" in captured.err
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-kb/v2"
        assert payload["datalog_rules"]

    def test_compile_with_algorithm(self, dependency_file, tmp_path, capsys):
        output = tmp_path / "kb.json"
        exit_code = main(
            ["compile", str(dependency_file), "-o", str(output), "--algorithm", "exbdr"]
        )
        assert exit_code == 0
        assert "exbdr" in capsys.readouterr().err


class TestLoadCommand:
    def test_load_prints_summary(self, kb_file, capsys):
        exit_code = main(["load", str(kb_file)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "algorithm:      HypDR" in captured.out
        assert "fingerprint:" in captured.out

    def test_load_with_rules(self, kb_file, capsys):
        exit_code = main(["load", str(kb_file), "--rules"])
        assert exit_code == 0
        assert ":-" in capsys.readouterr().out

    def test_load_rejects_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-kb/v99"}', encoding="utf-8")
        exit_code = main(["load", str(path)])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestServeBatchCommand:
    def test_serve_batch_from_saved_kb(self, kb_file, facts_file, queries_file, capsys):
        exit_code = main(
            ["serve-batch", str(kb_file), str(facts_file), str(queries_file)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sw1" in captured.out
        assert "sw2" in captured.out
        assert "answered 2 queries" in captured.err

    def test_serve_batch_compiles_gtgds_on_the_fly(
        self, dependency_file, facts_file, queries_file, capsys
    ):
        exit_code = main(
            ["serve-batch", str(dependency_file), str(facts_file), str(queries_file)]
        )
        assert exit_code == 0
        assert "sw1" in capsys.readouterr().out

    def test_serve_batch_refuses_incomplete_rewriting(
        self, dependency_file, facts_file, queries_file, tmp_path, capsys
    ):
        kb_path = tmp_path / "truncated.kb.json"
        assert (
            main(
                ["compile", str(dependency_file), "-o", str(kb_path), "--timeout", "0"]
            )
            == 2
        )
        exit_code = main(
            ["serve-batch", str(kb_path), str(facts_file), str(queries_file)]
        )
        assert exit_code == 2
        assert "incomplete" in capsys.readouterr().err

    def test_serve_batch_uses_facts_from_dependency_file(
        self, facts_file, queries_file, tmp_path, capsys
    ):
        mixed = tmp_path / "mixed.gtgd"
        mixed.write_text(CIM_DEPENDENCIES + "ACEquipment(seedsw).", encoding="utf-8")
        exit_code = main(
            ["serve-batch", str(mixed), str(facts_file), str(queries_file)]
        )
        assert exit_code == 0
        assert "seedsw" in capsys.readouterr().out

    def test_serve_batch_applies_deltas_incrementally(
        self, kb_file, facts_file, queries_file, tmp_path, capsys
    ):
        delta = tmp_path / "delta.facts"
        delta.write_text("ACEquipment(sw42).", encoding="utf-8")
        exit_code = main(
            [
                "serve-batch",
                str(kb_file),
                str(facts_file),
                str(queries_file),
                "--delta",
                str(delta),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sw42" in captured.out
        assert "delta" in captured.err


    def test_serve_batch_retracts_incrementally(
        self, kb_file, facts_file, queries_file, tmp_path, capsys
    ):
        retract = tmp_path / "retract.facts"
        retract.write_text("ACEquipment(sw2).", encoding="utf-8")
        exit_code = main(
            [
                "serve-batch",
                str(kb_file),
                str(facts_file),
                str(queries_file),
                "--retract",
                str(retract),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "retract" in captured.err
        assert "sw2" not in captured.out

    def test_serve_batch_interleaves_updates_in_command_line_order(
        self, kb_file, facts_file, queries_file, tmp_path, capsys
    ):
        delta = tmp_path / "delta.facts"
        delta.write_text("ACEquipment(sw42).", encoding="utf-8")
        retract = tmp_path / "retract.facts"
        # retracting the fact added by the preceding --delta only works if
        # the two streams are applied in command-line order
        retract.write_text("ACEquipment(sw42).", encoding="utf-8")
        exit_code = main(
            [
                "serve-batch",
                str(kb_file),
                str(facts_file),
                str(queries_file),
                "--delta",
                str(delta),
                "--retract",
                str(retract),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sw42" not in captured.out
        assert captured.err.index("delta") < captured.err.index("retract")

    def test_serve_batch_reads_queries_from_stdin(
        self, kb_file, facts_file, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("Equipment(?x)\n"))
        exit_code = main(["serve-batch", str(kb_file), str(facts_file), "-"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "sw1" in captured.out
        assert "answered 1 queries" in captured.err

    def test_serve_batch_json_emits_ndjson_results(
        self, kb_file, facts_file, queries_file, capsys
    ):
        import json

        exit_code = main(
            ["serve-batch", str(kb_file), str(facts_file), str(queries_file), "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(lines) == 2
        by_query = {line["query"]: line for line in lines}
        equipment = by_query["ans(?x) <- Equipment(?x)"]
        assert equipment["count"] == len(equipment["answers"])
        assert ["sw1"] in equipment["answers"]
        assert ["sw2"] in equipment["answers"]
        # answers are sorted rows of term strings — the canonical encoding
        assert equipment["answers"] == sorted(equipment["answers"])

    def test_serve_batch_json_from_stdin_pipeline(
        self, kb_file, facts_file, capsys, monkeypatch
    ):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("Terminal(?x)\n% comment\nACEquipment(?x)\n")
        )
        exit_code = main(
            ["serve-batch", str(kb_file), str(facts_file), "-", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [json.loads(line) for line in captured.out.splitlines() if line]
        assert [line["query"] for line in lines] == [
            "ans(?x) <- Terminal(?x)",
            "ans(?x) <- ACEquipment(?x)",
        ]


class TestServeCommand:
    def test_serve_rejects_duplicate_kb_names(self, kb_file, capsys):
        exit_code = main(["serve", f"cim={kb_file}", f"cim={kb_file}"])
        assert exit_code == 2
        assert "duplicate" in capsys.readouterr().err

    def test_serve_rejects_facts_for_unknown_kb(self, kb_file, facts_file, capsys):
        exit_code = main(
            ["serve", f"cim={kb_file}", "--facts", f"other={facts_file}"]
        )
        assert exit_code == 2
        assert "names no loaded knowledge base" in capsys.readouterr().err

    def test_serve_rejects_missing_kb_file(self, tmp_path, capsys):
        exit_code = main(["serve", str(tmp_path / "missing.kb.json")])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_output(self, dependency_file, capsys):
        exit_code = main(["stats", str(dependency_file)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "full TGDs" in captured.out
        assert "non-full TGDs" in captured.out
        assert "maximum arity:     2" in captured.out

    def test_stats_with_facts_in_file(self, tmp_path, capsys):
        path = tmp_path / "mixed.gtgd"
        path.write_text(CIM_DEPENDENCIES + CIM_FACTS, encoding="utf-8")
        exit_code = main(["stats", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "facts in file:     4" in captured.out
