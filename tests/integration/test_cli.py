"""Tests for the command-line interface."""

import pytest

from repro.cli import main

CIM_DEPENDENCIES = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

CIM_FACTS = """
ACEquipment(sw1).
ACEquipment(sw2).
hasTerminal(sw1, trm1).
ACTerminal(trm1).
"""


@pytest.fixture
def dependency_file(tmp_path):
    path = tmp_path / "deps.gtgd"
    path.write_text(CIM_DEPENDENCIES, encoding="utf-8")
    return path


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "data.facts"
    path.write_text(CIM_FACTS, encoding="utf-8")
    return path


class TestRewriteCommand:
    def test_rewrite_to_stdout(self, dependency_file, capsys):
        exit_code = main(["rewrite", str(dependency_file), "--algorithm", "hypdr"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert ":-" in captured.out
        assert "Equipment(?" in captured.out
        assert "Datalog rules" in captured.err

    def test_rewrite_to_file(self, dependency_file, tmp_path, capsys):
        output = tmp_path / "rewriting.dl"
        exit_code = main(
            ["rewrite", str(dependency_file), "-o", str(output), "--algorithm", "exbdr"]
        )
        assert exit_code == 0
        text = output.read_text(encoding="utf-8")
        assert "ACEquipment" in text
        assert ":-" in text

    def test_rewrite_with_ablation_flags(self, dependency_file, capsys):
        exit_code = main(
            [
                "rewrite",
                str(dependency_file),
                "--no-subsumption",
                "--no-lookahead",
                "--algorithm",
                "skdr",
            ]
        )
        assert exit_code == 0

    def test_rewrite_timeout_gives_nonzero_exit(self, dependency_file, capsys):
        exit_code = main(["rewrite", str(dependency_file), "--timeout", "0"])
        assert exit_code == 2

    def test_unknown_algorithm_rejected(self, dependency_file):
        with pytest.raises(SystemExit):
            main(["rewrite", str(dependency_file), "--algorithm", "magic"])


class TestMaterializeCommand:
    def test_materialize_prints_all_facts(self, dependency_file, facts_file, capsys):
        exit_code = main(["materialize", str(dependency_file), str(facts_file)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Equipment(sw1)." in captured.out
        assert "Equipment(sw2)." in captured.out
        assert "input facts" in captured.err


class TestEntailsCommand:
    def test_entailed_fact(self, dependency_file, facts_file, capsys):
        exit_code = main(
            ["entails", str(dependency_file), str(facts_file), "Equipment(sw2)"]
        )
        assert exit_code == 0
        assert "entailed" in capsys.readouterr().out

    def test_non_entailed_fact(self, dependency_file, facts_file, capsys):
        exit_code = main(
            ["entails", str(dependency_file), str(facts_file), "Equipment(trm1)"]
        )
        assert exit_code == 1
        assert "not entailed" in capsys.readouterr().out


class TestStatsCommand:
    def test_stats_output(self, dependency_file, capsys):
        exit_code = main(["stats", str(dependency_file)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "full TGDs" in captured.out
        assert "non-full TGDs" in captured.out
        assert "maximum arity:     2" in captured.out

    def test_stats_with_facts_in_file(self, tmp_path, capsys):
        path = tmp_path / "mixed.gtgd"
        path.write_text(CIM_DEPENDENCIES + CIM_FACTS, encoding="utf-8")
        exit_code = main(["stats", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "facts in file:     4" in captured.out
