"""Integration tests for the high-level KnowledgeBase API."""

import pytest

from repro import (
    ConjunctiveQuery,
    KnowledgeBase,
    Variable,
    answer_query,
    entailed_base_facts,
    parse_program,
)
from repro.logic.atoms import Predicate
from repro.logic.terms import Constant, Null


class TestKnowledgeBase:
    def test_compile_once_query_many_instances(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        equipment = Predicate("Equipment", 1)
        first = kb.certain_base_facts(instance)
        assert equipment(Constant("sw1")) in first
        other_instance = parse_program("ACEquipment(sw42).").instance
        second = kb.certain_base_facts(other_instance)
        assert equipment(Constant("sw42")) in second

    def test_entails(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        equipment = Predicate("Equipment", 1)
        assert kb.entails(instance, equipment(Constant("sw2")))
        assert not kb.entails(instance, equipment(Constant("trm1")))

    def test_entails_rejects_non_base_facts(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        with pytest.raises(ValueError):
            kb.entails(instance, Predicate("Equipment", 1)(Null(0)))

    def test_query_answering(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        x = Variable("x")
        query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
        answers = kb.answer(query, instance)
        assert (Constant("sw1"),) in answers
        assert (Constant("sw2"),) in answers

    def test_materialize_exposes_statistics(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        result = kb.materialize(instance)
        assert len(result) >= len(instance)
        assert result.rounds >= 1

    def test_program_property(self, cim):
        tgds, _ = cim
        kb = KnowledgeBase.compile(tgds)
        assert len(kb.program) == kb.rewriting.output_size

    def test_compile_with_explicit_algorithm_and_settings(self, cim):
        from repro import RewritingSettings

        tgds, instance = cim
        kb = KnowledgeBase.compile(
            tgds, algorithm="exbdr", settings=RewritingSettings(use_lookahead=False)
        )
        assert kb.rewriting.algorithm == "ExbDR"
        assert kb.certain_base_facts(instance)


class TestOneShotHelpers:
    def test_answer_query(self, cim):
        tgds, instance = cim
        x = Variable("x")
        query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
        answers = answer_query(tgds, instance, query)
        assert len(answers) == 2

    def test_entailed_base_facts(self, running):
        tgds, instance = running
        facts = entailed_base_facts(tgds, instance, algorithm="skdr")
        assert Predicate("H", 1)(Constant("a")) in facts

    def test_queries_with_joins_over_completed_data(self, cim):
        """Join a derived unary fact with an explicit binary fact."""
        tgds, instance = cim
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(
            (x, y),
            (
                Predicate("Equipment", 1)(x),
                Predicate("hasTerminal", 2)(x, y),
            ),
        )
        answers = answer_query(tgds, instance, query)
        assert answers == {(Constant("sw1"), Constant("trm1"))}


class TestQueryOptionsSurface:
    def test_blessed_names_are_reexported_from_repro(self):
        import repro

        for name in ("KnowledgeBase", "QueryOptions", "ConjunctiveQuery"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_answer_many_positional_calls_keep_working(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        x = Variable("x")
        query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
        answers = kb.answer_many([query], instance)
        assert (Constant("sw1"),) in answers[0]

    def test_options_is_keyword_only(self, cim):
        from repro import QueryOptions

        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        x = Variable("x")
        query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
        with pytest.raises(TypeError):
            kb.answer_many([query], instance, QueryOptions())

    def test_every_strategy_returns_identical_answers(self, cim):
        from repro import QueryOptions

        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        query = ConjunctiveQuery(
            (Variable("y"),),
            (Predicate("hasTerminal", 2)(Constant("sw1"), Variable("y")),),
        )
        results = {
            strategy: kb.answer_many(
                [query], instance, options=QueryOptions(strategy=strategy)
            )[0]
            for strategy in ("auto", "materialized", "demand")
        }
        assert results["auto"] == results["materialized"] == results["demand"]
        assert results["auto"] == {(Constant("trm1"),)}

    def test_default_query_options_are_auto(self):
        from repro.datalog.query import DEFAULT_QUERY_OPTIONS, QUERY_STRATEGIES

        assert DEFAULT_QUERY_OPTIONS.strategy == "auto"
        assert QUERY_STRATEGIES == ("auto", "materialized", "demand")


class TestDeprecatedSurface:
    def test_kb_answer_warns_but_works(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        x = Variable("x")
        query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
        with pytest.warns(DeprecationWarning, match="answer_many"):
            answers = kb.answer(query, instance)
        assert (Constant("sw1"),) in answers

    def test_kb_certain_base_facts_warns_but_works(self, cim):
        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        with pytest.warns(DeprecationWarning, match="session"):
            facts = kb.certain_base_facts(instance)
        assert Predicate("Equipment", 1)(Constant("sw1")) in facts

    def test_answer_query_warns_but_works(self, cim):
        tgds, instance = cim
        x = Variable("x")
        query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
        with pytest.warns(DeprecationWarning, match="answer_many"):
            answers = answer_query(tgds, instance, query)
        assert len(answers) == 2

    def test_entailed_base_facts_warns_but_works(self, running):
        tgds, instance = running
        with pytest.warns(DeprecationWarning, match="certain_base_facts"):
            facts = entailed_base_facts(tgds, instance, algorithm="skdr")
        assert Predicate("H", 1)(Constant("a")) in facts

    def test_blessed_paths_do_not_warn(self, cim):
        import warnings as warnings_module

        tgds, instance = cim
        kb = KnowledgeBase.compile(tgds)
        x = Variable("x")
        query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", DeprecationWarning)
            kb.answer_many([query], instance)
            kb.session(instance).certain_base_facts()
            kb.entails(instance, Predicate("Equipment", 1)(Constant("sw1")))
