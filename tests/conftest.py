"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.logic import Atom, Constant, Predicate, Variable, parse_program
from repro.workloads.families import cim_example, running_example


@pytest.fixture
def x() -> Variable:
    return Variable("x")


@pytest.fixture
def y() -> Variable:
    return Variable("y")


@pytest.fixture
def predicates():
    """A small vocabulary of predicates used across tests."""
    return {
        "A": Predicate("A", 2),
        "B": Predicate("B", 2),
        "C": Predicate("C", 2),
        "D": Predicate("D", 2),
        "E": Predicate("E", 1),
        "P": Predicate("P", 1),
        "R": Predicate("R", 2),
        "S": Predicate("S", 3),
    }


@pytest.fixture
def running():
    """Example 4.3: the GTGDs (8)–(13) and the base instance {A(a, b)}."""
    return running_example()


@pytest.fixture
def cim():
    """Example 1.1: the CIM GTGDs (1)–(4) and facts (5)–(6)."""
    return cim_example()


@pytest.fixture
def running_program_text() -> str:
    """The running example in the textual dependency format."""
    return """
    A(?x1, ?x2) -> exists ?y. B(?x1, ?y), C(?x1, ?y).
    C(?x1, ?x2) -> D(?x1, ?x2).
    B(?x1, ?x2), D(?x1, ?x2) -> E(?x1).
    A(?x1, ?x2), E(?x1) -> exists ?y1, ?y2. F(?x1, ?y1), F(?y1, ?y2).
    E(?x1), F(?x1, ?x2) -> G(?x1).
    B(?x1, ?x2), G(?x1) -> H(?x1).
    A(a, b).
    """


@pytest.fixture
def parsed_running(running_program_text):
    return parse_program(running_program_text)
