"""Tests for KnowledgeBase persistence, fingerprinting, and the compile cache."""

import json

import pytest

from repro import KnowledgeBase, parse_program
from repro.datalog.query import parse_query
from repro.kb import (
    KB_FORMAT_VERSION,
    KnowledgeBaseFormatError,
    cached_rewrite,
    clear_compile_cache,
    compile_cache_stats,
    read_kb_file,
    sigma_fingerprint,
)
from repro.rewriting import RewritingSettings, UnguardedTGDError
from repro.workloads.instances import generate_instance
from repro.workloads.ontology_suite import generate_suite

CIM = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

CIM_FACTS = """
ACEquipment(sw1). ACEquipment(sw2). hasTerminal(sw1, trm1). ACTerminal(trm1).
"""


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_rules_and_answers(self, tmp_path):
        program = parse_program(CIM)
        kb = KnowledgeBase.compile(program.tgds)
        path = kb.save(tmp_path / "cim.kb.json")
        loaded = KnowledgeBase.load(path)
        assert loaded.tgds == kb.tgds
        assert set(loaded.rewriting.datalog_rules) == set(
            kb.rewriting.datalog_rules
        )
        assert loaded.rewriting.algorithm == kb.rewriting.algorithm
        assert loaded.rewriting.completed == kb.rewriting.completed
        instance = parse_program(CIM_FACTS).instance
        query = parse_query("Equipment(?x)")
        assert loaded.answer(query, instance) == kb.answer(query, instance)

    def test_round_trip_preserves_statistics(self, tmp_path):
        program = parse_program(CIM)
        kb = KnowledgeBase.compile(program.tgds, use_cache=False)
        loaded = KnowledgeBase.load(kb.save(tmp_path / "kb.json"))
        original = kb.rewriting.statistics.as_dict()
        restored = loaded.rewriting.statistics.as_dict()
        assert restored == original

    def test_round_trip_on_ontology_suite(self, tmp_path):
        """load(save(kb)) answers identically across synthetic ontologies."""
        suite = generate_suite(count=3, seed=7, min_axioms=12, max_axioms=24)
        settings = RewritingSettings(timeout_seconds=8.0)
        for item in suite:
            kb = KnowledgeBase.compile(
                item.tgds, algorithm="exbdr", settings=settings
            )
            if not kb.rewriting.completed:
                continue
            path = kb.save(tmp_path / f"{item.identifier}.kb.json")
            loaded = KnowledgeBase.load(path)
            assert set(loaded.rewriting.datalog_rules) == set(
                kb.rewriting.datalog_rules
            ), item.identifier
            instance = generate_instance(
                item.tgds, fact_count=120, constant_count=30, seed=1
            )
            assert loaded.certain_base_facts(instance) == kb.certain_base_facts(
                instance
            ), item.identifier

    def test_saved_file_is_versioned_json(self, tmp_path):
        program = parse_program(CIM)
        kb = KnowledgeBase.compile(program.tgds)
        path = kb.save(tmp_path / "kb.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == KB_FORMAT_VERSION
        assert payload["sigma_fingerprint"] == kb.fingerprint


class TestFactSegments:
    #: CIM plus a disconnected predicate: demand for Equipment-side queries
    #: never touches Tag/Tagged, so their segment must stay undecoded
    _SIGMA = CIM + "\nTag(?x) -> Tagged(?x).\n"
    _FACTS = CIM_FACTS + "\nTag(t1). Tag(t2).\n"

    def _kb_and_facts(self):
        program = parse_program(self._SIGMA)
        kb = KnowledgeBase.compile(program.tgds)
        facts = tuple(parse_program(self._FACTS).instance)
        return kb, facts

    def test_save_with_facts_round_trips_them(self, tmp_path):
        kb, facts = self._kb_and_facts()
        path = kb.save(tmp_path / "kb.json", facts=facts)
        loaded = KnowledgeBase.load(path)
        assert loaded.fact_segments is not None
        assert set(loaded.fact_segments) == set(facts)

    def test_save_without_facts_has_no_segments(self, tmp_path):
        kb, _ = self._kb_and_facts()
        loaded = KnowledgeBase.load(kb.save(tmp_path / "kb.json"))
        assert loaded.fact_segments is None

    def test_segments_decode_lazily_per_predicate(self, tmp_path):
        from repro.logic.atoms import Predicate

        kb, facts = self._kb_and_facts()
        path = kb.save(tmp_path / "kb.json", facts=facts)
        loaded = KnowledgeBase.load(path)
        segments = loaded.fact_segments
        assert segments.predicates_loaded == 0
        assert segments.total_facts == len(set(facts))
        relation = segments.relation(Predicate("ACEquipment", 1))
        assert len(relation) == 2
        assert segments.predicates_loaded == 1
        assert segments.predicates_loaded < segments.total_predicates
        assert segments.load_wall_seconds >= 0.0

    def test_bound_demand_query_loads_only_probed_predicates(self, tmp_path):
        """The lazy-segment acceptance criterion: a repro-kb/v2 KB answers a
        bound demand query with ``predicates_loaded < total_predicates``."""
        kb, facts = self._kb_and_facts()
        path = kb.save(tmp_path / "kb.json", facts=facts)
        loaded, seed = KnowledgeBase.load_or_compile(path)
        segments = loaded.fact_segments
        assert seed is segments and segments.predicates_loaded == 0
        session = loaded.session(seed, defer_materialization=True)
        query = parse_query("Equipment(sw1)")
        answers = session.answer(query)
        # same answers as the fully materialized oracle...
        assert answers == kb.answer_many([query], facts)[0]
        # ...while the session stayed cold and decoded a strict subset
        assert session.is_cold
        assert 0 < segments.predicates_loaded < segments.total_predicates

    def test_warming_a_lazy_session_matches_eager_one(self, tmp_path):
        kb, facts = self._kb_and_facts()
        path = kb.save(tmp_path / "kb.json", facts=facts)
        loaded, seed = KnowledgeBase.load_or_compile(path)
        lazy_session = loaded.session(seed, defer_materialization=True)
        assert lazy_session.base_fact_count == len(set(facts))
        eager_session = kb.session(facts)
        assert lazy_session.facts() == eager_session.facts()
        assert not lazy_session.is_cold

    def test_v1_file_upgrades_and_round_trips_to_v2(self, tmp_path):
        """v1 → load → save → v2 → load, per the compatibility contract."""
        kb, facts = self._kb_and_facts()
        v2_path = kb.save(tmp_path / "kb.v2.json")
        payload = json.loads(v2_path.read_text(encoding="utf-8"))
        payload["format"] = "repro-kb/v1"
        v1_path = tmp_path / "kb.v1.json"
        v1_path.write_text(json.dumps(payload), encoding="utf-8")

        upgraded = KnowledgeBase.load(v1_path)  # v1 → load
        assert upgraded.tgds == kb.tgds
        resaved = upgraded.save(tmp_path / "kb.resaved.json")  # save → v2
        assert (
            json.loads(resaved.read_text(encoding="utf-8"))["format"]
            == "repro-kb/v2"
        )
        final = KnowledgeBase.load(resaved)  # → load
        assert set(final.rewriting.datalog_rules) == set(kb.rewriting.datalog_rules)
        query = parse_query("Equipment(?x)")
        assert final.answer_many([query], facts) == kb.answer_many([query], facts)

    def test_malformed_segment_rejected(self, tmp_path):
        kb, facts = self._kb_and_facts()
        path = kb.save(tmp_path / "kb.json", facts=facts)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["fact_segments"]["predicates"]["Bogus/2"] = {
            "arity": 3,  # key/arity mismatch
            "count": 0,
            "rows": "",
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(KnowledgeBaseFormatError, match="arity"):
            KnowledgeBase.load(path)

    def test_row_count_mismatch_rejected_on_decode(self, tmp_path):
        from repro.logic.atoms import Predicate

        kb, facts = self._kb_and_facts()
        path = kb.save(tmp_path / "kb.json", facts=facts)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["fact_segments"]["predicates"]["ACEquipment/1"]["count"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = KnowledgeBase.load(path)  # headers parse fine
        with pytest.raises(KnowledgeBaseFormatError, match="declares 99 rows"):
            loaded.fact_segments.relation(Predicate("ACEquipment", 1))


class TestFormatErrors:
    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "kb.json"
        path.write_text(json.dumps({"format": "repro-kb/v99"}), encoding="utf-8")
        with pytest.raises(KnowledgeBaseFormatError, match="unsupported KB format"):
            KnowledgeBase.load(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "kb.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(KnowledgeBaseFormatError, match="not valid JSON"):
            read_kb_file(path)

    def test_tampered_tgds_rejected(self, tmp_path):
        program = parse_program(CIM)
        kb = KnowledgeBase.compile(program.tgds)
        path = kb.save(tmp_path / "kb.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        del payload["tgds"][0]
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(KnowledgeBaseFormatError, match="digest"):
            KnowledgeBase.load(path)

    def test_tampered_rules_rejected(self, tmp_path):
        program = parse_program(CIM)
        kb = KnowledgeBase.compile(program.tgds)
        path = kb.save(tmp_path / "kb.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        del payload["datalog_rules"][0]
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(KnowledgeBaseFormatError, match="digest"):
            KnowledgeBase.load(path)

    def test_missing_integrity_fields_rejected(self, tmp_path):
        program = parse_program(CIM)
        kb = KnowledgeBase.compile(program.tgds)
        path = kb.save(tmp_path / "kb.json")
        for field_name in ("content_digest", "sigma_fingerprint"):
            payload = json.loads(path.read_text(encoding="utf-8"))
            del payload[field_name]
            stripped = tmp_path / f"no_{field_name}.json"
            stripped.write_text(json.dumps(payload), encoding="utf-8")
            with pytest.raises(KnowledgeBaseFormatError, match=field_name):
                KnowledgeBase.load(stripped)


class TestFingerprint:
    def test_invariant_under_clause_order(self):
        lines = [line for line in CIM.strip().splitlines() if line.strip()]
        forward = parse_program("\n".join(lines)).tgds
        backward = parse_program("\n".join(reversed(lines))).tgds
        assert sigma_fingerprint(forward) == sigma_fingerprint(backward)

    def test_invariant_under_variable_renaming(self):
        renamed = CIM.replace("?x", "?u").replace("?y", "?v").replace("?z", "?w")
        assert sigma_fingerprint(parse_program(CIM).tgds) == sigma_fingerprint(
            parse_program(renamed).tgds
        )

    def test_different_sigma_different_fingerprint(self):
        other = parse_program("A(?x) -> B(?x).").tgds
        assert sigma_fingerprint(parse_program(CIM).tgds) != sigma_fingerprint(other)


class TestCompileCache:
    def test_repeated_compiles_hit_the_cache(self):
        tgds = parse_program(CIM).tgds
        first = KnowledgeBase.compile(tgds)
        second = KnowledgeBase.compile(tgds)
        assert second.rewriting is first.rewriting
        stats = compile_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cache_is_shared_across_clause_reordering(self):
        lines = [line for line in CIM.strip().splitlines() if line.strip()]
        KnowledgeBase.compile(parse_program("\n".join(lines)).tgds)
        KnowledgeBase.compile(parse_program("\n".join(reversed(lines))).tgds)
        assert compile_cache_stats()["hits"] == 1

    def test_algorithm_and_settings_partition_the_cache(self):
        tgds = parse_program(CIM).tgds
        KnowledgeBase.compile(tgds, algorithm="hypdr")
        KnowledgeBase.compile(tgds, algorithm="exbdr")
        KnowledgeBase.compile(
            tgds, algorithm="hypdr", settings=RewritingSettings(use_lookahead=False)
        )
        assert compile_cache_stats() == {
            "entries": 3,
            "hits": 0,
            "misses": 3,
            "hit_rate": 0.0,
            "engine_cache_entries": 0,
        }

    def test_use_cache_false_bypasses_the_cache(self):
        tgds = parse_program(CIM).tgds
        first = KnowledgeBase.compile(tgds, use_cache=False)
        second = KnowledgeBase.compile(tgds, use_cache=False)
        assert second.rewriting is not first.rewriting
        assert compile_cache_stats()["entries"] == 0

    def test_cached_rewrite_returns_fingerprint(self):
        tgds = parse_program(CIM).tgds
        result, fingerprint = cached_rewrite(tgds)
        assert result.completed
        assert fingerprint == sigma_fingerprint(tgds)

    def test_unguarded_sigma_rejected_through_compile(self):
        tgds = parse_program("A(?x), B(?y) -> C(?x, ?y).").tgds
        with pytest.raises(UnguardedTGDError):
            KnowledgeBase.compile(tgds)
