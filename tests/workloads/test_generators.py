"""Tests for the workload generators: random GTGDs, ontology suite, blow-up, instances."""

import pytest

from repro.logic.tgd import all_guarded, head_normalize, split_full_non_full
from repro.workloads.blowup import ArityBlowup, blow_up_arity
from repro.workloads.instances import (
    generate_instance,
    generate_power_grid_instance,
    predicates_of_tgds,
    scale_report,
)
from repro.workloads.ontology_suite import (
    OntologyProfile,
    generate_input,
    generate_suite,
    suite_statistics,
)
from repro.workloads.random_gtgds import (
    RandomGTGDConfig,
    generate_random_gtgds,
    generate_random_instance,
)


class TestRandomGTGDs:
    def test_generated_tgds_are_guarded(self):
        for seed in range(10):
            tgds = generate_random_gtgds(RandomGTGDConfig(seed=seed))
            assert all_guarded(tgds)

    def test_determinism(self):
        config = RandomGTGDConfig(seed=5)
        assert generate_random_gtgds(config) == generate_random_gtgds(config)

    def test_seed_override(self):
        config = RandomGTGDConfig(seed=5)
        assert generate_random_gtgds(config, seed=6) != generate_random_gtgds(config)

    def test_requested_count(self):
        tgds = generate_random_gtgds(RandomGTGDConfig(seed=0, tgd_count=9))
        assert len(tgds) == 9

    def test_existential_probability_zero_gives_full_tgds(self):
        tgds = generate_random_gtgds(
            RandomGTGDConfig(seed=0, existential_probability=0.0)
        )
        assert all(tgd.is_full for tgd in tgds)

    def test_random_instance_uses_program_predicates(self):
        tgds = generate_random_gtgds(RandomGTGDConfig(seed=1))
        instance = generate_random_instance(tgds, seed=1)
        assert instance.is_base_instance
        program_predicates = set(predicates_of_tgds(tgds))
        assert instance.predicates() <= program_predicates


class TestOntologySuite:
    def test_single_input_generation(self):
        profile = OntologyProfile(
            class_count=10, property_count=3, axiom_count=25, seed=3
        )
        benchmark_input = generate_input(profile)
        assert len(benchmark_input.ontology) == 25
        assert benchmark_input.size > 0
        assert all_guarded(benchmark_input.tgds)

    def test_suite_sizes_grow_geometrically(self):
        suite = generate_suite(count=5, seed=0, min_axioms=10, max_axioms=160)
        sizes = [len(item.ontology) for item in suite]
        assert sizes[0] == 10
        assert sizes[-1] == 160
        assert sizes == sorted(sizes)

    def test_suite_is_deterministic(self):
        first = generate_suite(count=3, seed=7, min_axioms=10, max_axioms=30)
        second = generate_suite(count=3, seed=7, min_axioms=10, max_axioms=30)
        assert [item.tgds for item in first] == [item.tgds for item in second]

    def test_suite_contains_full_and_non_full_tgds(self):
        suite = generate_suite(count=4, seed=2, min_axioms=20, max_axioms=60)
        for item in suite:
            full, non_full = split_full_non_full(head_normalize(item.tgds))
            assert full, item.identifier
            assert non_full, item.identifier

    def test_statistics_block(self):
        suite = generate_suite(count=4, seed=2, min_axioms=20, max_axioms=60)
        stats = suite_statistics(suite)
        assert stats["full"]["min"] <= stats["full"]["med"] <= stats["full"]["max"]
        assert stats["non_full"]["min"] <= stats["non_full"]["max"]

    def test_identifiers_are_unique(self):
        suite = generate_suite(count=6, seed=0, min_axioms=10, max_axioms=20)
        identifiers = [item.identifier for item in suite]
        assert len(set(identifiers)) == len(identifiers)


class TestArityBlowup:
    def test_arities_are_multiplied(self, cim):
        tgds, _ = cim
        blown = blow_up_arity(tgds, factor=5, extra_atom_probability=0.0, seed=0)
        original_arities = {
            atom.predicate.name: atom.predicate.arity
            for tgd in tgds
            for atom in tgd.body + tgd.head
        }
        for tgd in blown:
            for atom in tgd.body + tgd.head:
                if atom.predicate.name in original_arities:
                    assert (
                        atom.predicate.arity
                        == original_arities[atom.predicate.name] * 5
                    )

    def test_guardedness_is_preserved(self, cim):
        tgds, _ = cim
        for seed in range(5):
            blown = blow_up_arity(tgds, factor=3, extra_atom_probability=0.5, seed=seed)
            assert all_guarded(blown)

    def test_factor_one_without_extras_is_a_renaming(self, cim):
        tgds, _ = cim
        blown = blow_up_arity(tgds, factor=1, extra_atom_probability=0.0, seed=0)
        assert len(blown) == len(tgds)
        for original, transformed in zip(tgds, blown):
            assert len(original.body) == len(transformed.body)
            assert len(original.head) == len(transformed.head)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            ArityBlowup(factor=0)

    def test_extra_atoms_can_appear(self, cim):
        tgds, _ = cim
        blown = blow_up_arity(tgds, factor=2, extra_atom_probability=1.0, seed=1)
        body_sizes_original = sum(len(t.body) for t in tgds)
        body_sizes_blown = sum(len(t.body) for t in blown)
        assert body_sizes_blown > body_sizes_original

    def test_existentials_are_preserved(self, cim):
        tgds, _ = cim
        blown = blow_up_arity(tgds, factor=2, extra_atom_probability=0.0, seed=0)
        assert sum(t.is_non_full for t in blown) == sum(t.is_non_full for t in tgds)


class TestInstanceGenerators:
    def test_generated_instance_size(self, cim):
        tgds, _ = cim
        instance = generate_instance(tgds, fact_count=200, constant_count=40, seed=0)
        assert 150 <= len(instance) <= 200
        assert instance.is_base_instance

    def test_instances_are_deterministic(self, cim):
        tgds, _ = cim
        first = generate_instance(tgds, fact_count=50, seed=3)
        second = generate_instance(tgds, fact_count=50, seed=3)
        assert first == second

    def test_empty_tgds_give_empty_instance(self):
        assert len(generate_instance([], fact_count=10)) == 0

    def test_power_grid_instance_has_incomplete_equipment(self):
        instance = generate_power_grid_instance(
            equipment_count=30, terminal_fraction=0.5, seed=1
        )
        counts = {p.name: 0 for p in instance.predicates()}
        for fact in instance:
            counts[fact.predicate.name] += 1
        assert counts["ACEquipment"] == 30
        assert 0 < counts.get("hasTerminal", 0) < 30

    def test_scale_report(self, cim):
        tgds, _ = cim
        instance = generate_instance(tgds, fact_count=80, constant_count=20, seed=0)
        report = scale_report(instance)
        assert report["facts"] == len(instance)
        assert report["constants"] <= 20
        assert report["predicates"] >= 1
