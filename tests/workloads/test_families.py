"""Tests for the paper's parametric GTGD families and fixture examples."""

import pytest

from repro.logic.tgd import all_guarded, head_normalize
from repro.workloads.families import (
    cim_example,
    cim_shortcut,
    exbdr_blowup_family,
    fulldr_example_e3,
    hypdr_advantage_family,
    running_example,
    running_example_shortcuts,
    skdr_blowup_family,
)


class TestFamilyShapes:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_exbdr_blowup_family(self, n):
        tgds = exbdr_blowup_family(n)
        assert len(tgds) == n + 1
        assert all_guarded(tgds)
        non_full = [t for t in tgds if t.is_non_full]
        assert len(non_full) == 1
        assert len(non_full[0].existential_variables) == n

    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_skdr_blowup_family(self, n):
        tgds = skdr_blowup_family(n)
        assert len(tgds) == 2
        assert all_guarded(tgds)
        non_full = [t for t in tgds if t.is_non_full][0]
        assert len(non_full.head) == n
        assert len(non_full.existential_variables) == 1

    @pytest.mark.parametrize("n", [1, 4])
    def test_hypdr_advantage_family(self, n):
        tgds = hypdr_advantage_family(n)
        assert len(tgds) == n + 2
        assert all_guarded(tgds)
        collector = tgds[-1]
        assert len(collector.body) == n

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            exbdr_blowup_family(0)
        with pytest.raises(ValueError):
            skdr_blowup_family(0)
        with pytest.raises(ValueError):
            hypdr_advantage_family(0)


class TestFixtureExamples:
    def test_running_example_shape(self):
        tgds, instance = running_example()
        assert len(tgds) == 6
        assert len(instance) == 1
        assert all_guarded(tgds)
        assert all(t.is_head_normal for t in head_normalize(tgds))

    def test_running_example_shortcuts_are_full(self):
        for shortcut in running_example_shortcuts():
            assert shortcut.is_datalog_rule

    def test_shortcuts_are_consequences_of_the_example(self):
        """Rules (14)–(16) must hold in every model of Σ — check them on the oracle."""
        from repro.chase import certain_base_facts
        from repro.logic.parser import parse_facts

        tgds, _ = running_example()
        # if the body of shortcut (14) holds, its head must be entailed
        instance = parse_facts("A(a, b).")
        facts = certain_base_facts(instance, tgds)
        assert any(f.predicate.name == "E" for f in facts)

    def test_cim_example_shape(self):
        tgds, instance = cim_example()
        assert len(tgds) == 4
        assert len(instance) == 4
        assert all_guarded(tgds)

    def test_cim_shortcut_is_a_consequence(self):
        """Rule (7) ACEquipment(x) → Equipment(x) follows from GTGDs (1)–(3)."""
        from repro.chase import certain_base_facts
        from repro.logic.parser import parse_facts
        from repro.logic.atoms import Predicate
        from repro.logic.terms import Constant

        tgds, _ = cim_example()
        facts = certain_base_facts(parse_facts("ACEquipment(sw9)."), tgds)
        assert Predicate("Equipment", 1)(Constant("sw9")) in facts
        assert cim_shortcut().is_datalog_rule

    def test_fulldr_example_shape(self):
        tgds = fulldr_example_e3()
        assert len(tgds) == 3
        assert all_guarded(tgds)
        arities = {atom.predicate.name: atom.predicate.arity
                   for tgd in tgds for atom in tgd.body + tgd.head}
        assert arities["S"] == 4 and arities["T"] == 3
