"""Unit tests for the constraint-propagating conjunctive match solver.

These pin the solver's *internals* — most-constrained-variable ordering,
forward-checking prunes, pre-seeded substitution handling, and the
empty-domain early exit — via the stats counters; equivalence with the
retained naive enumerations is covered by the property tests in
``tests/properties/test_property_solver_equivalence.py``.
"""

import itertools

import pytest

from repro.logic.atoms import Predicate
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.unification.solver import (
    GLOBAL_MATCH_SOLVER_STATS,
    MatchSolverStats,
    first_match,
    match_solver_stats,
    reset_match_solver_stats,
    solve_bounded,
    solve_bounded_pairings,
    solve_cover,
    solve_match,
)

P = Predicate("P", 1)
Q = Predicate("Q", 1)
R = Predicate("R", 2)
S = Predicate("S", 2)
x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def constants(prefix, count):
    return [Constant(f"{prefix}{index}") for index in range(count)]


class TestSolveMatch:
    def test_enumerates_all_homomorphisms(self):
        targets = (R(a, b), R(a, c), P(a))
        matches = list(solve_match((R(x, y), P(x)), targets))
        assert {m[y] for m in matches} == {b, c}
        assert all(m[x] == a for m in matches)

    def test_empty_patterns_yield_base(self):
        base = Substitution({x: a})
        matches = list(solve_match((), (P(a),), base))
        assert matches == [base]

    def test_pre_seeded_substitution_restricts_candidates(self):
        targets = (R(a, b), R(b, c))
        base = Substitution({x: b})
        matches = list(solve_match((R(x, y),), targets, base))
        assert len(matches) == 1
        assert matches[0][x] == b and matches[0][y] == c
        # the base bindings survive in every solution
        assert all(m[x] == b for m in matches)

    def test_pre_seeded_substitution_can_rule_out_everything(self):
        stats = MatchSolverStats()
        base = Substitution({x: c})
        matches = list(solve_match((R(x, y),), (R(a, b),), base, stats))
        assert matches == []
        assert stats.empty_domain_exits == 1
        assert stats.nodes_expanded == 0

    def test_most_constrained_slot_branches_first(self):
        # R(x, y) has many candidates, P(x) exactly one; branching on P
        # first binds x immediately and prunes R's candidates, so far fewer
        # nodes are expanded than the left-to-right product would visit
        many = constants("k", 30)
        targets = tuple(R(k, k) for k in many) + (R(a, b), P(a))
        stats = MatchSolverStats()
        matches = list(solve_match((R(x, y), P(x)), targets, stats=stats))
        assert len(matches) == 1
        # one node for P(a), one for the sole surviving R candidate
        assert stats.nodes_expanded == 2
        assert stats.domains_pruned >= 30

    def test_upfront_domain_intersection_detects_emptiness(self):
        # x must be a in P-land and b in Q-land: the intersected domain is
        # empty, so the search never expands a node
        stats = MatchSolverStats()
        matches = list(solve_match((P(x), Q(x)), (P(a), Q(b)), stats=stats))
        assert matches == []
        assert stats.empty_domain_exits >= 1
        assert stats.nodes_expanded == 0

    def test_missing_predicate_is_an_early_exit(self):
        stats = MatchSolverStats()
        matches = list(solve_match((P(x), S(x, y)), (P(a),), stats=stats))
        assert matches == []
        assert stats.empty_domain_exits == 1
        assert stats.nodes_expanded == 0

    def test_forward_checking_prunes_after_binding(self):
        # every per-variable domain is full (y can be a or b in both slots),
        # so the up-front intersection prunes nothing; only binding R(x, y)
        # reveals which S candidate survives — forward checking prunes the
        # other one on each branch
        d = Constant("d")
        targets = (R(a, b), R(b, a), S(b, c), S(a, d))
        stats = MatchSolverStats()
        matches = list(solve_match((R(x, y), S(y, z)), targets, stats=stats))
        assert {(m[x], m[z]) for m in matches} == {(a, c), (b, d)}
        assert stats.domains_pruned == 2
        assert stats.empty_domain_exits == 0

    def test_repeated_variable_within_an_atom(self):
        matches = list(solve_match((R(x, x),), (R(a, a), R(a, b))))
        assert len(matches) == 1
        assert matches[0][x] == a

    def test_first_match(self):
        assert first_match((R(x, y),), (R(a, b),)) is not None
        assert first_match((R(x, y),), (P(a),)) is None

    def test_accepts_predicate_indexed_universe(self):
        universe = {R: [R(a, b)], P: [P(a)]}
        matches = list(solve_match((R(x, y), P(x)), universe))
        assert len(matches) == 1


class TestSolveCover:
    def test_every_target_must_be_covered(self):
        # head P(x) ∧ Q(y) covers targets (P(a), Q(b)) one way
        matches = list(solve_cover((P(x), Q(y)), (P(a), Q(b))))
        assert len(matches) == 1
        assert matches[0][x] == a and matches[0][y] == b

    def test_uncoverable_target_exits_early(self):
        stats = MatchSolverStats()
        matches = list(solve_cover((P(x),), (Q(a),), stats=stats))
        assert matches == []
        assert stats.empty_domain_exits == 1
        assert stats.nodes_expanded == 0

    def test_base_substitution_is_respected(self):
        base = Substitution({x: a})
        assert list(solve_cover((P(x),), (P(b),), base)) == []
        covered = list(solve_cover((P(x),), (P(a),), base))
        assert len(covered) == 1

    def test_empty_targets_yield_base(self):
        base = Substitution({x: a})
        assert list(solve_cover((P(x),), (), base)) == [base]


class TestSolveBounded:
    def test_unconstrained_variables_range_over_the_pool(self):
        solutions = list(solve_bounded((x, y), (a, b)))
        images = {(s[x], s[y]) for s in solutions}
        assert images == set(itertools.product((a, b), repeat=2))

    def test_equality_merges_variable_classes(self):
        solutions = list(solve_bounded((x, y), (a, b), equalities=((P(x), P(y)),)))
        assert {(s[x], s[y]) for s in solutions} == {(a, a), (b, b)}

    def test_equality_against_rigid_term_forces_the_class(self):
        stats = MatchSolverStats()
        solutions = list(
            solve_bounded((x, y), (a, b), equalities=((R(x, y), R(x, a)),), stats=stats)
        )
        assert {(s[x], s[y]) for s in solutions} == {(a, a), (b, a)}
        # forcing y collapses its domain from two values to one
        assert stats.domains_pruned >= 1

    def test_rigid_term_outside_the_range_is_unsatisfiable(self):
        stats = MatchSolverStats()
        solutions = list(
            solve_bounded((x,), (a, b), equalities=((P(x), P(c)),), stats=stats)
        )
        assert solutions == []
        assert stats.empty_domain_exits == 1

    def test_contradictory_forcings_are_unsatisfiable(self):
        solutions = list(
            solve_bounded((x,), (a, b), equalities=((R(x, x), R(a, b)),))
        )
        assert solutions == []

    def test_empty_range_with_free_variables_exits_early(self):
        stats = MatchSolverStats()
        assert list(solve_bounded((x,), (), stats=stats)) == []
        assert stats.empty_domain_exits == 1
        assert stats.nodes_expanded == 0

    def test_no_variables_yields_the_empty_substitution(self):
        solutions = list(solve_bounded((), (a, b)))
        assert len(solutions) == 1
        assert not solutions[0]

    def test_pre_seeded_base_forces_listed_variables(self):
        # base images need not come from the range
        solutions = list(solve_bounded((x, y), (a, b), base=Substitution({x: c})))
        assert {(s[x], s[y]) for s in solutions} == {(c, a), (c, b)}

    def test_variables_outside_the_domain_act_rigid(self):
        # z is not solved for: the equality pins x to the term z itself
        solutions = list(
            solve_bounded((x,), (a, z), equalities=((P(x), P(z)),))
        )
        assert [s[x] for s in solutions] == [z]

    def test_solutions_never_exceed_the_satisfying_set(self):
        stats = MatchSolverStats()
        pool = tuple(constants("t", 5))
        solutions = list(
            solve_bounded(
                (x, y, z), pool, equalities=((R(x, y), R(z, pool[0])),), stats=stats
            )
        )
        # x~z merged, y forced: one free class of 5 values
        assert len(solutions) == 5
        assert stats.solutions == 5


class TestSolveBoundedPairings:
    def test_enumerates_nonempty_selections_only(self):
        body = (P(x), Q(y))
        heads = (P(z),)
        results = list(solve_bounded_pairings(body, heads, (x, y, z), (a,)))
        selections = {tuple(pair) for pair, _ in results}
        assert selections == {((P(x), P(z)),)}
        for selection, theta in results:
            assert theta.apply_atom(selection[0][0]) == theta.apply_atom(
                selection[0][1]
            )

    def test_inconsistent_pairing_prunes_the_subtree(self):
        # pairing R(x, x) with R(a, b) is contradictory; no selection
        # containing it survives
        stats = MatchSolverStats()
        results = list(
            solve_bounded_pairings((R(a, b),), (R(x, x),), (x,), (a, b), stats=stats)
        )
        assert results == []
        assert stats.empty_domain_exits >= 1

    def test_matches_brute_force_on_a_small_instance(self):
        body = (P(x), P(y))
        heads = (P(z), P(a))
        variables = (x, y, z)
        pool = (a, b)
        got = {
            (selection, theta)
            for selection, theta in solve_bounded_pairings(
                body, heads, variables, pool
            )
        }
        # brute force: every nonempty pairing, every total substitution
        expected = set()
        options = [[None, *heads], [None, *heads]]
        for combo in itertools.product(*options):
            selection = tuple(
                (body_atom, head_atom)
                for body_atom, head_atom in zip(body, combo)
                if head_atom is not None
            )
            if not selection:
                continue
            for images in itertools.product(pool, repeat=len(variables)):
                theta = Substitution(dict(zip(variables, images)))
                if all(
                    theta.apply_atom(body_atom) == theta.apply_atom(head_atom)
                    for body_atom, head_atom in selection
                ):
                    expected.add((selection, theta))
        assert got == expected


class TestStats:
    def test_global_counters_accumulate_and_reset(self):
        reset_match_solver_stats()
        list(solve_match((P(x),), (P(a), P(b))))
        snapshot = match_solver_stats()
        assert snapshot["solves"] == 1
        assert snapshot["solutions"] == 2
        reset_match_solver_stats()
        assert match_solver_stats()["solves"] == 0

    def test_explicit_stats_do_not_touch_the_global(self):
        reset_match_solver_stats()
        stats = MatchSolverStats()
        list(solve_match((P(x),), (P(a),), stats=stats))
        assert stats.solves == 1
        assert GLOBAL_MATCH_SOLVER_STATS.solves == 0

    def test_as_dict_keys(self):
        assert set(MatchSolverStats().as_dict()) == {
            "solves",
            "solutions",
            "nodes_expanded",
            "domains_pruned",
            "empty_domain_exits",
        }


@pytest.fixture(autouse=True)
def _reset_global_stats():
    yield
    reset_match_solver_stats()


class TestSolveUnificationSlots:
    def _differential(self, side_atoms, candidate_lists, frozen):
        """Reference: cartesian product with one full restricted MGU each."""
        from repro.unification.mgu import restricted_mgu

        expected = []
        for combination in itertools.product(*candidate_lists):
            theta = restricted_mgu(combination, side_atoms, frozen)
            if theta is not None:
                expected.append((tuple(combination), theta))
        return expected

    def test_matches_product_enumeration_and_order(self):
        u, v = Variable("u"), Variable("v")
        side_atoms = (R(x, y), S(y, z))
        candidate_lists = [
            [R(u, a), R(u, b), R(a, v)],
            [S(a, b), S(b, c), S(u, v)],
        ]
        from repro.unification.solver import solve_unification_slots

        got = list(solve_unification_slots(side_atoms, candidate_lists, frozenset()))
        expected = self._differential(side_atoms, candidate_lists, frozenset())
        assert got == expected
        assert len(got) >= 2  # the case is non-trivial

    def test_frozen_variables_are_respected(self):
        side_atoms = (R(x, y),)
        candidate_lists = [[R(a, y), R(x, b), R(a, b)]]
        frozen = frozenset((x, y))
        from repro.unification.solver import solve_unification_slots

        got = list(solve_unification_slots(side_atoms, candidate_lists, frozen))
        expected = self._differential(side_atoms, candidate_lists, frozen)
        assert got == expected

    def test_empty_candidate_list_short_circuits(self):
        from repro.unification.solver import solve_unification_slots

        stats = MatchSolverStats()
        got = list(
            solve_unification_slots(
                (R(x, y), S(y, z)), [[R(a, b)], []], frozenset(), stats=stats
            )
        )
        assert got == []
        assert stats.empty_domain_exits >= 1
        assert stats.nodes_expanded == 0

    def test_forward_checking_prunes_incompatible_slots(self):
        # binding the first slot forces x = a, which empties the second
        # slot's domain without ever expanding its candidates
        stats = MatchSolverStats()
        from repro.unification.solver import solve_unification_slots

        got = list(
            solve_unification_slots(
                (R(x, x), S(x, y)),
                [[R(a, a)], [S(b, c), S(c, c)]],
                frozenset(),
                stats=stats,
            )
        )
        assert got == []
        assert stats.domains_pruned >= 2
