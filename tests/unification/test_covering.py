"""Unit tests for weak covering and variable depth (de Nivelle)."""

from repro.logic.atoms import Predicate
from repro.logic.parser import parse_tgds
from repro.logic.rules import Rule
from repro.logic.skolem import skolemize
from repro.logic.terms import Constant, FunctionSymbol, Variable
from repro.unification.covering import (
    atom_variable_depth,
    is_weakly_covering,
    rule_is_weakly_covering,
    rule_variable_depth,
    term_variable_depth,
)

R = Predicate("R", 2)
S = Predicate("S", 1)
x, y = Variable("x"), Variable("y")
a = Constant("a")
f = FunctionSymbol("f", 1, is_skolem=True)
g = FunctionSymbol("g", 2, is_skolem=True)


class TestVariableDepth:
    def test_ground_terms_have_depth_minus_one(self):
        assert term_variable_depth(a) == -1
        assert term_variable_depth(f(a)) == -1

    def test_plain_variable_has_depth_zero(self):
        assert term_variable_depth(x) == 0

    def test_nesting_increases_depth(self):
        assert term_variable_depth(f(x)) == 1
        assert term_variable_depth(f(f(x))) == 2

    def test_atom_depth_takes_maximum(self):
        assert atom_variable_depth(R(x, f(x))) == 1
        assert atom_variable_depth(R(a, a)) == -1

    def test_rule_depth(self):
        rule = Rule((S(x),), S(f(x)))
        assert rule_variable_depth(rule) == 1


class TestWeakCovering:
    def test_function_free_atoms_are_weakly_covering(self):
        assert is_weakly_covering(R(x, y))
        assert is_weakly_covering(R(a, a))

    def test_functional_term_with_all_variables_is_covering(self):
        # g(x, y) mentions every variable of the atom, so the atom is covering
        assert is_weakly_covering(R(x, g(x, y)))
        assert is_weakly_covering(S(g(x, y)))

    def test_functional_term_missing_a_variable_is_not_covering(self):
        # f(x) misses the atom variable y
        assert not is_weakly_covering(R(y, f(x)))

    def test_ground_functional_subterms_are_ignored(self):
        assert is_weakly_covering(R(x, f(a)))

    def test_skolemized_guarded_tgds_are_weakly_covering(self):
        tgds = parse_tgds(
            """
            A(?x1, ?x2) -> exists ?y. B(?x1, ?y), C(?x1, ?y).
            B(?x1, ?x2), D(?x1, ?x2) -> E(?x1).
            """
        )
        for rule in skolemize(tgds):
            assert rule_is_weakly_covering(rule)
