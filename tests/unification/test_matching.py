"""Unit tests for one-sided matching."""

from repro.logic.atoms import Predicate
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, FunctionSymbol, Variable
from repro.unification.matching import (
    exists_match_into_set,
    is_instance_of,
    is_variant,
    match_atom,
    match_atom_lists,
    match_conjunction_into_set,
)

R = Predicate("R", 2)
S = Predicate("S", 1)
x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")
f = FunctionSymbol("f", 1, is_skolem=True)


class TestMatchAtom:
    def test_variables_bind_to_terms(self):
        match = match_atom(R(x, y), R(a, b))
        assert match is not None
        assert match[x] == a and match[y] == b

    def test_matching_is_one_sided(self):
        # the target's variables are never bound
        assert match_atom(R(a, b), R(x, y)) is None

    def test_repeated_variable_must_match_equal_terms(self):
        assert match_atom(R(x, x), R(a, a)) is not None
        assert match_atom(R(x, x), R(a, b)) is None

    def test_base_substitution_is_respected(self):
        base = Substitution({x: a})
        assert match_atom(R(x, y), R(a, b), base) is not None
        assert match_atom(R(x, y), R(b, b), base) is None

    def test_function_terms_match_structurally(self):
        assert match_atom(S(f(x)), S(f(a))) is not None
        assert match_atom(S(x), S(f(a))) is not None
        assert match_atom(S(f(x)), S(a)) is None

    def test_predicate_mismatch(self):
        assert match_atom(S(x), R(a, b)) is None


class TestMatchLists:
    def test_positional_matching(self):
        match = match_atom_lists((R(x, y), S(x)), (R(a, b), S(a)))
        assert match is not None
        assert match[y] == b

    def test_inconsistent_bindings_fail(self):
        assert match_atom_lists((R(x, y), S(x)), (R(a, b), S(b))) is None

    def test_length_mismatch(self):
        assert match_atom_lists((S(x),), ()) is None


class TestMatchIntoSet:
    def test_enumerates_all_homomorphisms(self):
        targets = (R(a, b), R(a, c), S(a))
        matches = list(match_conjunction_into_set((R(x, y), S(x)), targets))
        images = {m[y] for m in matches}
        assert images == {b, c}

    def test_exists_match(self):
        targets = (R(a, b), S(a))
        assert exists_match_into_set((R(x, y), S(x)), targets) is not None
        assert exists_match_into_set((R(x, y), S(y)), targets) is None

    def test_empty_pattern_matches_trivially(self):
        assert exists_match_into_set((), (S(a),)) is not None


class TestVariantsAndInstances:
    def test_is_instance_of(self):
        assert is_instance_of(R(x, y), R(a, b))
        assert not is_instance_of(R(a, b), R(x, y))

    def test_is_variant(self):
        assert is_variant(R(x, y), R(z, Variable("w")))
        assert not is_variant(R(x, y), R(x, x))
        assert not is_variant(R(x, x), R(x, y))
        assert not is_variant(R(x, y), R(a, y))
