"""Unit tests for most general unifiers and X-restricted MGUs."""

from repro.logic.atoms import Predicate
from repro.logic.terms import Constant, FunctionSymbol, Variable
from repro.unification.mgu import (
    mgu,
    mgu_atoms,
    rename_disjoint,
    restricted_mgu,
    terms_unifiable,
    unifiable,
)

R = Predicate("R", 2)
S = Predicate("S", 1)
x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
a, b = Constant("a"), Constant("b")
f = FunctionSymbol("f", 1, is_skolem=True)
g = FunctionSymbol("g", 2, is_skolem=True)


class TestBasicUnification:
    def test_variable_to_constant(self):
        theta = mgu(R(x, y), R(a, b))
        assert theta is not None
        assert theta.apply_atom(R(x, y)) == R(a, b)

    def test_variable_to_variable(self):
        theta = mgu(S(x), S(y))
        assert theta is not None
        assert theta.apply_term(x) == theta.apply_term(y)

    def test_different_predicates_fail(self):
        assert mgu(S(x), R(x, y)) is None

    def test_constant_clash_fails(self):
        assert mgu(R(a, x), R(b, y)) is None

    def test_shared_variable_propagates(self):
        theta = mgu(R(x, x), R(a, y))
        assert theta is not None
        assert theta.apply_term(y) == a

    def test_unifier_is_most_general(self):
        """The MGU of R(x, y) and R(y, z) must not ground any variable."""
        theta = mgu(R(x, y), R(y, z))
        assert theta is not None
        image = theta.apply_atom(R(x, y))
        assert all(not term.is_ground for term in image.args)


class TestFunctionTerms:
    def test_unify_variable_with_function_term(self):
        theta = mgu(S(x), S(f(y)))
        assert theta is not None
        assert theta.apply_term(x) == f(y)

    def test_function_symbol_clash(self):
        assert mgu(S(f(x)), S(g(y, z))) is None

    def test_occurs_check(self):
        assert mgu(R(x, x), R(y, f(y))) is None
        assert not terms_unifiable(x, f(x))

    def test_nested_unification(self):
        theta = mgu(S(f(x)), S(f(a)))
        assert theta is not None
        assert theta.apply_term(x) == a

    def test_unification_of_skolem_atoms_example_5_11(self):
        """Unifying the head of rule (22) with the first body atom of rule (10)."""
        skolem = FunctionSymbol("f", 2, is_skolem=True)
        B = Predicate("B", 2)
        x1, x2 = Variable("x1"), Variable("x2")
        u1, u2 = Variable("u1"), Variable("u2")
        head = B(x1, skolem(x1, x2))
        body_atom = B(u1, u2)
        theta = mgu(head, body_atom)
        assert theta is not None
        assert theta.apply_atom(head) == theta.apply_atom(body_atom)
        unified_second_argument = theta.apply_term(u2)
        assert not unified_second_argument.is_ground
        assert any(sym == skolem for sym in unified_second_argument.function_symbols())


class TestAtomLists:
    def test_simultaneous_unification(self):
        theta = mgu_atoms((R(x, y), S(x)), (R(a, z), S(a)))
        assert theta is not None
        assert theta.apply_term(x) == a

    def test_length_mismatch(self):
        assert mgu_atoms((S(x),), (S(x), S(y))) is None

    def test_conflicting_positions_fail(self):
        assert mgu_atoms((S(x), S(x)), (S(a), S(b))) is None


class TestRestrictedMGU:
    def test_frozen_variable_stays_fixed(self):
        theta = restricted_mgu((S(y),), (S(x),), [y])
        assert theta is not None
        assert theta.get(y) is None
        assert theta.apply_term(x) == y

    def test_two_frozen_variables_cannot_unify(self):
        assert restricted_mgu((S(y),), (S(z),), [y, z]) is None

    def test_frozen_variable_cannot_bind_to_constant(self):
        assert restricted_mgu((S(y),), (S(a),), [y]) is None

    def test_unrestricted_behaviour_unchanged(self):
        assert restricted_mgu((S(y),), (S(a),), []) is not None


class TestHelpers:
    def test_unifiable(self):
        assert unifiable(R(x, y), R(a, b))
        assert not unifiable(R(a, x), R(b, y))

    def test_rename_disjoint_only_renames_clashes(self):
        atoms = (R(x, y),)
        renamed, renaming = rename_disjoint(atoms, {x}, "1")
        assert x not in renamed[0].variable_set()
        assert y in renamed[0].variable_set()
        assert x in renaming.domain()


class TestIncrementalUnifier:
    def test_accumulated_substitution_matches_mgu_atoms(self):
        from repro.unification.mgu import IncrementalUnifier, mgu_atoms

        lefts = (R(x, y), S(y))
        rights = (R(a, z), S(b))
        unifier = IncrementalUnifier()
        for left, right in zip(lefts, rights):
            assert unifier.unify_atoms(left, right)
        assert unifier.substitution() == mgu_atoms(lefts, rights)

    def test_failed_pair_rolls_back_cleanly(self):
        from repro.unification.mgu import IncrementalUnifier, mgu

        unifier = IncrementalUnifier()
        assert unifier.unify_atoms(R(x, y), R(a, b))
        before = unifier.substitution()
        # x is already bound to a; R(x, .) cannot match R(b, .)
        assert not unifier.unify_atoms(R(x, z), R(b, b))
        assert unifier.substitution() == before
        assert unifier.substitution() == mgu(R(x, y), R(a, b))

    def test_undo_to_mark_restores_earlier_state(self):
        from repro.unification.mgu import IncrementalUnifier

        unifier = IncrementalUnifier()
        assert unifier.unify_atoms(R(x, x), R(a, a))
        mark = unifier.mark()
        assert unifier.unify_atoms(S(y), S(b))
        unifier.undo(mark)
        substitution = unifier.substitution()
        assert substitution.get(x) == a
        assert substitution.get(y) is None

    def test_frozen_variables_behave_like_constants(self):
        from repro.unification.mgu import IncrementalUnifier

        unifier = IncrementalUnifier(frozenset((x,)))
        assert not unifier.unify_atoms(R(x, y), R(a, b))
        assert unifier.unify_atoms(R(x, y), R(x, b))

    def test_predicate_mismatch_is_rejected(self):
        from repro.unification.mgu import IncrementalUnifier

        unifier = IncrementalUnifier()
        assert not unifier.unify_atoms(S(x), R(a, b))
        assert len(unifier.substitution()) == 0
