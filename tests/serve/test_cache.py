"""Tests for the generation-stamped LRU answer cache and query fingerprints."""

import pytest

from repro.datalog.query import parse_query
from repro.serve.cache import AnswerCache, query_fingerprint


class TestQueryFingerprint:
    def test_alpha_equivalent_queries_share_a_fingerprint(self):
        a = query_fingerprint(parse_query("Equipment(?x), hasTerminal(?x, ?y)"))
        b = query_fingerprint(parse_query("Equipment(?u), hasTerminal(?u, ?w)"))
        assert a == b

    def test_different_variable_patterns_differ(self):
        joined = query_fingerprint(parse_query("R(?x, ?y), S(?y, ?z)"))
        cross = query_fingerprint(parse_query("R(?x, ?y), S(?u, ?z)"))
        assert joined != cross

    def test_constants_are_kept_verbatim(self):
        grounded = query_fingerprint(parse_query("hasTerminal(sw1, ?y)"))
        assert "sw1" in grounded
        assert grounded != query_fingerprint(parse_query("hasTerminal(?x, ?y)"))

    def test_atom_order_is_preserved(self):
        # conjunction is commutative but the fingerprint deliberately does
        # not canonicalize atom order (that would be graph canonicalization)
        ab = query_fingerprint(parse_query("A(?x), B(?x)"))
        ba = query_fingerprint(parse_query("B(?x), A(?x)"))
        assert ab != ba


class TestAnswerCache:
    def test_put_get_roundtrip(self):
        cache = AnswerCache(capacity=4)
        assert cache.get("kb", "q1") is None
        assert cache.put("kb", "q1", 0, [["a"]])
        assert cache.get("kb", "q1") == [["a"]]
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            AnswerCache(capacity=0)

    def test_invalidate_makes_every_entry_stale(self):
        cache = AnswerCache(capacity=4)
        cache.put("kb", "q1", 0, [["a"]])
        cache.put("kb", "q2", 0, [["b"]])
        assert cache.invalidate("kb") == 1
        assert cache.get("kb", "q1") is None
        assert cache.get("kb", "q2") is None
        stats = cache.stats()
        assert stats["stale_drops"] == 2
        assert stats["invalidations"] == 1

    def test_invalidation_is_per_kb(self):
        cache = AnswerCache(capacity=4)
        cache.put("kb1", "q", 0, [["a"]])
        cache.put("kb2", "q", 0, [["b"]])
        cache.invalidate("kb1")
        assert cache.get("kb1", "q") is None
        assert cache.get("kb2", "q") == [["b"]]

    def test_put_refuses_superseded_generation(self):
        # a batch that raced with a mutation must not poison the cache
        cache = AnswerCache(capacity=4)
        cache.invalidate("kb")  # generation is now 1
        assert not cache.put("kb", "q", 0, [["stale"]])
        assert cache.get("kb", "q") is None
        assert cache.put("kb", "q", 1, [["fresh"]])
        assert cache.get("kb", "q") == [["fresh"]]

    def test_lru_eviction_order(self):
        cache = AnswerCache(capacity=2)
        cache.put("kb", "q1", 0, [["1"]])
        cache.put("kb", "q2", 0, [["2"]])
        assert cache.get("kb", "q1") == [["1"]]  # refresh q1
        cache.put("kb", "q3", 0, [["3"]])  # evicts q2, the LRU entry
        assert cache.get("kb", "q2") is None
        assert cache.get("kb", "q1") == [["1"]]
        assert cache.get("kb", "q3") == [["3"]]
        assert cache.stats()["evictions"] == 1

    def test_generation_starts_at_zero(self):
        cache = AnswerCache()
        assert cache.generation("anything") == 0

    def test_clear_keeps_generations(self):
        cache = AnswerCache(capacity=4)
        cache.put("kb", "q", 0, [["a"]])
        cache.invalidate("kb")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 0
        # generations survive a clear: a put at the old generation stays refused
        assert not cache.put("kb", "q", 0, [["stale"]])

    def test_watch_session_invalidates_on_mutation(self):
        from repro.api import KnowledgeBase
        from repro.logic.parser import parse_facts, parse_program

        program = parse_program(
            "ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y)."
        )
        kb = KnowledgeBase.compile(program.tgds)
        session = kb.session(parse_facts("ACEquipment(sw1)."))
        cache = AnswerCache(capacity=4)
        cache.watch_session("kb", session)
        cache.put("kb", "q", 0, [["a"]])
        session.add_facts(parse_facts("ACEquipment(sw2)."))
        assert cache.get("kb", "q") is None
        assert cache.generation("kb") == 1
        session.retract_facts(parse_facts("ACEquipment(sw2)."))
        assert cache.generation("kb") == 2
