"""Tests for the serving layer's fault tolerance.

Covers the four resilience mechanisms plus the fault-injection harness
that drives them: worker supervision (a killed pool process is rebuilt
and the task retried, mutations exactly-once), per-request deadlines
(structured ``timeout`` errors; an expired queued mutation is never
applied), bounded admission queues (structured ``overloaded`` sheds),
op-log checkpoints (cold catch-up replays only the post-checkpoint
suffix), quarantine of sessions whose catch-up fails mid-suffix, and
fail-fast :class:`ClientDisconnectedError` on dead TCP connections.

Pool-tier tests really fork worker processes and really ``os._exit``
them, so they are kept few and each one asserts several things; every
recovered answer is still checked against a fresh
:meth:`KnowledgeBase.answer_many` oracle, same as the CI chaos smoke.
"""

import asyncio
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.api import KnowledgeBase
from repro.datalog.query import parse_query
from repro.logic.parser import parse_facts, parse_program
from repro.serve.faults import (
    DELAY_DIRECTIVE_PREFIX,
    KILL_DIRECTIVE,
    FaultPlan,
)
from repro.serve.protocol import encode_answers
from repro.serve.server import (
    Client,
    ClientDisconnectedError,
    ReasoningServer,
    ServedKB,
    ServeError,
)
from repro.serve.workers import PoolWorkerTier, WorkerState, build_kb_spec

SIGMA = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

FACT_LINES = [
    "ACEquipment(sw1).",
    "ACEquipment(sw2).",
    "hasTerminal(sw1, trm1).",
    "ACTerminal(trm1).",
]


@pytest.fixture(scope="module")
def kb():
    return KnowledgeBase.compile(parse_program(SIGMA).tgds)


def oracle(kb, fact_lines, query_text):
    """Fresh single-threaded answers for one query over the given facts."""
    answers = kb.answer_many(
        [parse_query(query_text)], parse_facts("\n".join(fact_lines))
    )
    return encode_answers(answers[0])


async def make_server(kb, **kwargs):
    server = ReasoningServer(
        [ServedKB("cim", kb, parse_facts("\n".join(FACT_LINES)))], **kwargs
    )
    await server.start()
    return server


class TestFaultPlan:
    def test_directives_fire_by_dispatch_index(self):
        plan = FaultPlan(kill_on_tasks={1}, delay_on_tasks={2: 0.25})
        assert plan.next_task_directive() is None
        assert plan.next_task_directive() == KILL_DIRECTIVE
        assert plan.next_task_directive() == f"{DELAY_DIRECTIVE_PREFIX}0.25"
        assert plan.next_task_directive() is None
        assert plan.injected == {"kills": 1, "delays": 1, "drops": 0}

    def test_schedule_helpers_arm_the_very_next_index(self):
        plan = FaultPlan()
        plan.next_task_directive()
        plan.schedule_kill_on_next_task()
        assert plan.next_task_directive() == KILL_DIRECTIVE
        plan.schedule_delay_on_next_task(0.5)
        assert plan.next_task_directive() == f"{DELAY_DIRECTIVE_PREFIX}0.5"

    def test_drop_counter_is_independent_of_task_counter(self):
        plan = FaultPlan(drop_on_requests={1})
        plan.next_task_directive()
        plan.next_task_directive()
        assert plan.should_drop_request() is False
        assert plan.should_drop_request() is True
        assert plan.should_drop_request() is False
        stats = plan.stats()
        assert stats["drops"] == 1
        assert stats["requests_seen"] == 3
        assert stats["tasks_dispatched"] == 2

    def test_a_kill_listed_once_kills_once(self):
        # the counter advances per dispatch, so a retried task draws a
        # fresh index and runs clean — supervision's safety property
        plan = FaultPlan(kill_on_tasks={0})
        assert plan.next_task_directive() == KILL_DIRECTIVE
        assert plan.next_task_directive() is None


class TestSupervision:
    def test_killed_workers_are_restarted_and_mutations_apply_exactly_once(
        self, kb
    ):
        async def scenario():
            plan = FaultPlan()
            server = await make_server(kb, workers=1, fault_plan=plan)
            try:
                await server.warm()
                client = server.local_client()
                plan.schedule_kill_on_next_task()
                survived = await client.query("Equipment(?x)")
                plan.schedule_kill_on_next_task()
                mutation = await client.add_facts("ACEquipment(sw9).")
                after = await client.query("Equipment(?x)")
                stats = await client.stats()
                return survived, mutation, after, stats
            finally:
                await server.shutdown()

        survived, mutation, after, stats = asyncio.run(scenario())
        # the killed query was retried on a rebuilt pool and still answered
        # correctly at the pre-mutation generation
        assert survived["ok"] is True
        assert survived["generation"] == 0
        assert survived["answers"] == oracle(kb, FACT_LINES, "Equipment(?x)")
        # the mutation's first dispatch died unacked; the retry replayed it
        # from the op log exactly once — generation bumped by one, not two
        assert mutation["ok"] is True
        assert mutation["generation"] == 1
        assert after["generation"] == 1
        assert after["answers"] == oracle(
            kb, FACT_LINES + ["ACEquipment(sw9)."], "Equipment(?x)"
        )
        resilience = stats["resilience"]
        assert resilience["worker_restarts"] >= 2
        assert resilience["task_retries"] >= 2
        assert resilience["recovery_wall_seconds"] > 0
        assert stats["fault_injection"]["kills"] == 2
        assert stats["workers"]["mode"] == "pool"

    def test_a_task_that_keeps_dying_fails_bounded_not_forever(self, kb):
        # consecutive kill indexes exhaust the retry budget: the failure
        # propagates as BrokenProcessPool instead of retrying unbounded
        specs = {"cim": build_kb_spec(kb, parse_facts("\n".join(FACT_LINES)))}
        plan = FaultPlan(kill_on_tasks={0, 1})

        async def scenario():
            tier = PoolWorkerTier(specs, 1, plan, max_task_retries=1)
            try:
                with pytest.raises(BrokenProcessPool):
                    await tier.answer_batch("cim", [], ["Equipment(?x)"])
            finally:
                await tier.shutdown()
            return tier.describe()

        described = asyncio.run(scenario())
        assert described["restarts"] >= 1
        assert described["retries"] == 1
        assert plan.injected["kills"] == 2


class TestDeadlines:
    def test_expired_deadline_is_a_structured_timeout_not_a_hang(self, kb):
        async def scenario():
            plan = FaultPlan()
            server = await make_server(kb, fault_plan=plan)
            try:
                client = server.local_client()
                plan.schedule_delay_on_next_task(0.6)
                loop = asyncio.get_running_loop()
                started = loop.time()
                with pytest.raises(ServeError) as excinfo:
                    await client.query("Equipment(?x)", deadline_ms=100)
                elapsed = loop.time() - started
                # let the delayed worker task drain before shutdown
                await asyncio.sleep(0.7)
                stats = await client.stats()
                return excinfo.value, elapsed, stats
            finally:
                await server.shutdown()

        error, elapsed, stats = asyncio.run(scenario())
        assert error.kind == "timeout"
        assert elapsed < 0.5, "the deadline must fire well before the delay"
        assert stats["resilience"]["timeouts"] == 1

    def test_mutation_expiring_while_queued_is_never_applied(self, kb):
        async def scenario():
            plan = FaultPlan()
            server = await make_server(kb, fault_plan=plan)
            try:
                client = server.local_client()
                # stall the drain loop: the delayed batch keeps the mutation
                # barrier waiting, so the add sits in the queue past its
                # deadline and its future is cancelled before it is popped
                plan.schedule_delay_on_next_task(0.5)
                stalled = asyncio.create_task(client.query("Terminal(?x)"))
                await asyncio.sleep(0.05)
                with pytest.raises(ServeError) as excinfo:
                    await client.add_facts("ACEquipment(sw9).", deadline_ms=50)
                await stalled
                after = await client.query("ACEquipment(?x)")
                return excinfo.value, after
            finally:
                await server.shutdown()

        error, after = asyncio.run(scenario())
        assert error.kind == "timeout"
        # honoring the timeout means NOT applying the op: the generation
        # never advanced and the fact is not there
        assert after["generation"] == 0
        assert after["answers"] == oracle(kb, FACT_LINES, "ACEquipment(?x)")

    def test_constructor_rejects_nonpositive_deadline_and_threshold(self, kb):
        facts = parse_facts("\n".join(FACT_LINES))
        with pytest.raises(ValueError, match="deadline"):
            ReasoningServer(
                [ServedKB("cim", kb, facts)], default_deadline_ms=0
            )
        with pytest.raises(ValueError, match="checkpoint threshold"):
            ReasoningServer(
                [ServedKB("cim", kb, facts)], checkpoint_threshold=0
            )


class TestBackpressure:
    def test_overloaded_queue_sheds_with_a_structured_error(self, kb):
        async def scenario():
            plan = FaultPlan()
            server = await make_server(
                kb, fault_plan=plan, max_queue_depth=2
            )
            try:
                clients = [server.local_client() for _ in range(3)]
                # stall the drain loop at the mutation barrier so admitted
                # requests accumulate instead of being popped immediately
                plan.schedule_delay_on_next_task(0.5)
                stall = asyncio.create_task(
                    clients[0].add_facts("ACEquipment(sw9).")
                )
                await asyncio.sleep(0.05)
                results = await asyncio.gather(
                    *[
                        clients[i % 3].query("Equipment(?x)")
                        for i in range(8)
                    ],
                    return_exceptions=True,
                )
                await stall
                stats = await clients[0].stats()
                return results, stats
            finally:
                await server.shutdown()

        results, stats = asyncio.run(scenario())
        shed = [
            r
            for r in results
            if isinstance(r, ServeError) and r.kind == "overloaded"
        ]
        answered = [r for r in results if isinstance(r, dict)]
        assert shed, "a depth-2 queue under an 8-query flood must shed"
        assert len(shed) + len(answered) == 8
        # the survivors still answer correctly at the post-mutation state
        for response in answered:
            assert response["answers"] == oracle(
                kb, FACT_LINES + ["ACEquipment(sw9)."], "Equipment(?x)"
            )
        assert stats["resilience"]["sheds"] == len(shed)
        assert stats["kbs"]["cim"]["queue_high_water"] <= 2


class TestCheckpoints:
    MUTATIONS = [
        ("add", "ACEquipment(sw9)."),
        ("add", "ACEquipment(swA)."),
        ("retract", "ACEquipment(sw9)."),
        ("add", "hasTerminal(sw2, trm2)."),
        ("add", "ACTerminal(trm2)."),
    ]

    def surviving_lines(self):
        lines = set(FACT_LINES)
        for kind, fact in self.MUTATIONS:
            if kind == "add":
                lines.add(fact)
            else:
                lines.discard(fact)
        return sorted(lines)

    def run_mutations(self, kb, threshold):
        async def scenario():
            server = await make_server(kb, checkpoint_threshold=threshold)
            try:
                client = server.local_client()
                for kind, fact in self.MUTATIONS:
                    if kind == "add":
                        await client.add_facts(fact)
                    else:
                        await client.retract_facts(fact)
                answered = await client.query("Equipment(?x)")
                stats = await client.stats()
                key = server._names["cim"]
                state = server._states[key]
                return (
                    answered,
                    stats,
                    key,
                    list(state.ops),
                    state.checkpoint_payload(),
                    dict(server._specs),
                )
            finally:
                await server.shutdown()

        return asyncio.run(scenario())

    def test_checkpoints_truncate_the_log_without_changing_answers(self, kb):
        answered, stats, *_ = self.run_mutations(kb, threshold=2)
        kb_stats = stats["kbs"]["cim"]
        assert kb_stats["generation"] == len(self.MUTATIONS)
        assert kb_stats["checkpoints"] >= 2
        assert kb_stats["checkpoint_epoch"] >= 2
        assert kb_stats["op_log_length"] < len(self.MUTATIONS)
        assert stats["resilience"]["checkpoints"] == kb_stats["checkpoints"]
        assert answered["answers"] == oracle(
            kb, self.surviving_lines(), "Equipment(?x)"
        )
        # the warm inline session stood exactly at each checkpoint
        # generation (mutations are barriers), so it adopted every new
        # epoch in place — no rebuild, no quarantine
        assert stats["resilience"]["worker_rebuilds"] == 0
        assert stats["resilience"]["quarantined_sessions"] == 0

    def test_cold_worker_replays_less_than_the_full_history(self, kb):
        # the acceptance criterion: after checkpointing, a brand-new worker
        # builds from the snapshot and replays only the post-checkpoint
        # suffix, strictly fewer ops than the total mutation count
        _, _, key, ops, checkpoint, specs = self.run_mutations(kb, threshold=2)
        assert checkpoint is not None
        cold = WorkerState(specs)
        payload = cold.answer_batch(key, ops, ["Equipment(?x)"], None, checkpoint)
        assert payload["ops_replayed"] == len(ops) < len(self.MUTATIONS)
        assert payload["generation"] == len(self.MUTATIONS)
        assert payload["answers"][0] == oracle(
            kb, self.surviving_lines(), "Equipment(?x)"
        )

    def test_stale_epoch_reference_is_rejected(self, kb):
        # a task may never reference an epoch the server superseded
        _, _, key, ops, checkpoint, specs = self.run_mutations(kb, threshold=2)
        state = WorkerState(specs)
        state.answer_batch(key, ops, ["Equipment(?x)"], None, checkpoint)
        stale = dict(checkpoint)
        stale["epoch"] = checkpoint["epoch"] - 1
        with pytest.raises(RuntimeError, match="epoch"):
            state.answer_batch(key, ops, ["Equipment(?x)"], None, stale)


class TestQuarantine:
    def test_catch_up_failing_mid_suffix_quarantines_the_session(self, kb):
        # regression: a malformed op used to leave the session half-advanced
        # with stale bookkeeping; it must be dropped and rebuilt instead
        specs = {"cim": build_kb_spec(kb, parse_facts("\n".join(FACT_LINES)))}
        state = WorkerState(specs)
        good_op = ("add", "ACEquipment(sw9).")
        state.apply_mutation("cim", [good_op])
        with pytest.raises(ValueError):
            state.apply_mutation("cim", [good_op, ("add", "NotAFact(")])
        assert state.quarantined == 1
        # the poisoned session is gone: the next task rebuilds from the
        # spec and replays the (valid) log, serving correct answers
        payload = state.answer_batch("cim", [good_op], ["ACEquipment(?x)"])
        assert payload["ops_replayed"] == 1
        assert payload["generation"] == 1
        assert payload["answers"][0] == oracle(
            kb, FACT_LINES + ["ACEquipment(sw9)."], "ACEquipment(?x)"
        )


class TestClientDisconnect:
    def test_dropped_connection_fails_fast_and_reconnect_works(self, kb):
        async def scenario():
            plan = FaultPlan()
            server = await make_server(kb, fault_plan=plan)
            try:
                host, port = await server.start_tcp()
                client = await Client.connect(host, port)
                plan.schedule_drop_on_next_request()
                # two pipelined requests: the drop aborts the connection, so
                # BOTH in-flight futures must fail promptly (no leaks)
                results = await asyncio.gather(
                    client.query("Equipment(?x)"),
                    client.query("Terminal(?x)"),
                    return_exceptions=True,
                )
                disconnected = client.disconnected
                # later requests fail immediately without touching the wire
                with pytest.raises(ClientDisconnectedError):
                    await asyncio.wait_for(
                        client.query("Equipment(?x)"), timeout=1.0
                    )
                await client.close()
                # a fresh connection serves normally
                fresh = await Client.connect(host, port)
                try:
                    recovered = await fresh.query("Equipment(?x)")
                finally:
                    await fresh.close()
                return results, disconnected, recovered, plan.injected
            finally:
                await server.shutdown()

        results, disconnected, recovered, injected = asyncio.run(scenario())
        assert len(results) == 2
        for result in results:
            assert isinstance(result, ClientDisconnectedError)
            assert result.kind == "disconnected"
        assert disconnected is True
        assert injected["drops"] == 1
        assert recovered["answers"] == oracle(kb, FACT_LINES, "Equipment(?x)")

    def test_closing_the_client_fails_pending_requests(self, kb):
        async def scenario():
            plan = FaultPlan()
            server = await make_server(kb, fault_plan=plan)
            try:
                host, port = await server.start_tcp()
                client = await Client.connect(host, port)
                # stall the server so the request is still pending when the
                # client closes its end
                plan.schedule_delay_on_next_task(0.4)
                pending = asyncio.create_task(client.query("Equipment(?x)"))
                await asyncio.sleep(0.05)
                await client.close()
                with pytest.raises(ClientDisconnectedError):
                    await pending
                await asyncio.sleep(0.4)  # drain the delayed worker task
            finally:
                await server.shutdown()

        asyncio.run(scenario())
