"""Tests for the NDJSON serving protocol (framing, validation, encoding)."""

import json

import pytest

from repro.logic.parser import parse_facts
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_answers,
    encode_message,
    error_response,
    mutation_result,
    ok_response,
    query_result,
    validate_request,
)


class TestFraming:
    def test_encode_is_one_terminated_line(self):
        line = encode_message({"op": "ping", "id": 7})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_roundtrip(self):
        message = {"id": 3, "op": "query", "query": "Equipment(?x)"}
        assert decode_message(encode_message(message)) == message

    def test_decode_accepts_str_and_bytes(self):
        assert decode_message('{"op":"ping"}') == {"op": "ping"}
        assert decode_message(b'{"op":"ping"}') == {"op": "ping"}

    def test_decode_rejects_malformed_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_message("{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message("[1, 2]")


class TestValidateRequest:
    def test_known_ops_pass(self):
        assert validate_request({"op": "ping"}) == "ping"
        assert validate_request({"op": "stats"}) == "stats"
        assert validate_request({"op": "query", "query": "P(?x)"}) == "query"
        assert validate_request({"op": "add", "facts": "P(a)."}) == "add"
        assert validate_request({"op": "retract", "facts": "P(a)."}) == "retract"

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "drop_tables"})
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({})

    def test_query_needs_string_query(self):
        with pytest.raises(ProtocolError, match="string 'query'"):
            validate_request({"op": "query"})
        with pytest.raises(ProtocolError, match="string 'query'"):
            validate_request({"op": "query", "query": 42})

    def test_mutations_need_string_facts(self):
        for op in ("add", "retract"):
            with pytest.raises(ProtocolError, match="string 'facts'"):
                validate_request({"op": op})

    def test_query_strategies_accepted(self):
        for strategy in ("auto", "materialized", "demand"):
            request = {"op": "query", "query": "P(?x)", "strategy": strategy}
            assert validate_request(request) == "query"
        # omitting the field defaults to auto
        assert validate_request({"op": "query", "query": "P(?x)"}) == "query"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ProtocolError, match="unknown strategy"):
            validate_request(
                {"op": "query", "query": "P(?x)", "strategy": "telepathy"}
            )
        with pytest.raises(ProtocolError, match="unknown strategy"):
            validate_request({"op": "query", "query": "P(?x)", "strategy": 3})

    def test_deadline_ms_accepted_on_query_and_mutations(self):
        for request in (
            {"op": "query", "query": "P(?x)", "deadline_ms": 250},
            {"op": "query", "query": "P(?x)", "deadline_ms": 0.5},
            {"op": "add", "facts": "P(a).", "deadline_ms": 1000},
            {"op": "retract", "facts": "P(a).", "deadline_ms": 1000},
        ):
            assert validate_request(request) == request["op"]
        # omitting the field means "use the server default"
        assert validate_request({"op": "query", "query": "P(?x)"}) == "query"

    def test_bad_deadline_ms_rejected(self):
        for deadline in (0, -5, "100", True, [100]):
            with pytest.raises(ProtocolError, match="deadline_ms"):
                validate_request(
                    {"op": "query", "query": "P(?x)", "deadline_ms": deadline}
                )


class TestResponses:
    def test_ok_response_echoes_id_and_fields(self):
        response = ok_response(9, count=3)
        assert response == {"id": 9, "ok": True, "count": 3}

    def test_error_response_shape(self):
        response = error_response("a", "bad query")
        assert response == {"id": "a", "ok": False, "error": "bad query"}

    def test_error_response_kind_tags_machine_actionable_failures(self):
        response = error_response("a", "too slow", kind="timeout")
        assert response["error_kind"] == "timeout"
        # untagged errors must not carry the field at all
        assert "error_kind" not in error_response("a", "bad query")

    def test_protocol_version_is_stable(self):
        # clients key off this string; changing it is a breaking change
        assert PROTOCOL_VERSION == "repro-serve/v1"


class TestEncodeAnswers:
    def test_sorted_string_rows(self):
        facts = parse_facts("R(b, a).\nR(a, b).")
        rows = {fact.args for fact in facts}
        assert encode_answers(rows) == [["a", "b"], ["b", "a"]]

    def test_canonical_under_iteration_order(self):
        facts = parse_facts("P(c).\nP(a).\nP(b).")
        rows = [fact.args for fact in facts]
        assert encode_answers(rows) == encode_answers(reversed(rows))

    def test_json_serializable(self):
        facts = parse_facts("P(a).")
        payload = query_result("P(?x)", [fact.args for fact in facts])
        assert json.loads(encode_message(payload)) == {
            "query": "P(?x)",
            "answers": [["a"]],
            "count": 1,
        }

    def test_query_result_cached_flag_is_optional(self):
        assert "cached" not in query_result("P(?x)", [])
        assert query_result("P(?x)", [], cached=True)["cached"] is True


class TestMutationResult:
    def test_add_and_retract_shapes(self):
        class Delta:
            added_facts = 2
            derived_count = 5
            rounds = 3

        class Retraction:
            retracted_facts = 1
            ignored_facts = 0
            overdeleted = 4
            rederived = 2
            net_removed = 2
            rounds = 2

        added = mutation_result("add", Delta())
        assert added["op"] == "add"
        assert added["derived"] == 5
        retracted = mutation_result("retract", Retraction())
        assert retracted["op"] == "retract"
        assert retracted["net_removed"] == 2
        assert retracted["overdeleted"] == 4
