"""Tests for the long-lived reasoning server: batching, caching, consistency.

Every asyncio scenario runs through ``asyncio.run`` inside a plain sync
test so the suite needs no async pytest plugin.  Correctness is always
checked the same way the CI smoke does: answers served concurrently must
equal a fresh single-threaded :meth:`KnowledgeBase.answer_many` at the
generation the server stamped on the response.
"""

import asyncio

import pytest

from repro.api import KnowledgeBase
from repro.datalog.query import parse_query
from repro.logic.parser import parse_facts, parse_program
from repro.serve.protocol import encode_answers
from repro.serve.server import (
    Client,
    LocalClient,
    ReasoningServer,
    ServedKB,
    ServeError,
)

SIGMA = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

FACT_LINES = [
    "ACEquipment(sw1).",
    "ACEquipment(sw2).",
    "ACEquipment(sw3).",
    "hasTerminal(sw1, trm1).",
    "ACTerminal(trm1).",
]

QUERY_TEXTS = [
    "Equipment(?x)",
    "Terminal(?x)",
    "ACEquipment(?x), hasTerminal(?x, ?y)",
    "hasTerminal(?x, ?y)",
]


@pytest.fixture(scope="module")
def kb():
    return KnowledgeBase.compile(parse_program(SIGMA).tgds)


def oracle_answers(kb, fact_lines):
    """Fresh single-threaded answers for every test query, by query text."""
    queries = [parse_query(text) for text in QUERY_TEXTS]
    answers = kb.answer_many(queries, parse_facts("\n".join(fact_lines)))
    return {
        text: encode_answers(answer_set)
        for text, answer_set in zip(QUERY_TEXTS, answers)
    }


async def make_server(kb, fact_lines=FACT_LINES, **kwargs):
    server = ReasoningServer(
        [ServedKB("cim", kb, parse_facts("\n".join(fact_lines)))], **kwargs
    )
    await server.start()
    return server


class TestBasicServing:
    def test_single_query_matches_fresh_session(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                response = await client.query("Equipment(?x)")
                assert response["ok"] is True
                assert response["generation"] == 0
                assert response["count"] == len(response["answers"])
                return response["answers"]
            finally:
                await server.shutdown()

        answers = asyncio.run(scenario())
        assert answers == oracle_answers(kb, FACT_LINES)["Equipment(?x)"]

    def test_concurrent_clients_agree_with_single_threaded_session(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                clients = [server.local_client() for _ in range(4)]
                tasks = [
                    clients[i % len(clients)].query(QUERY_TEXTS[i % len(QUERY_TEXTS)])
                    for i in range(24)
                ]
                return await asyncio.gather(*tasks)
            finally:
                await server.shutdown()

        responses = asyncio.run(scenario())
        oracle = oracle_answers(kb, FACT_LINES)
        assert len(responses) == 24
        for response in responses:
            assert response["generation"] == 0
            assert response["answers"] == oracle[response["query"]]

    def test_ping_and_stats(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                assert await client.ping() is True
                await client.query("Equipment(?x)")
                return await client.stats()
            finally:
                await server.shutdown()

        stats = asyncio.run(scenario())
        assert stats["protocol"] == "repro-serve/v1"
        assert "cim" in stats["kbs"]
        assert stats["kbs"]["cim"]["generation"] == 0
        for block in ("answer_cache", "batching", "workers"):
            assert block in stats
        assert stats["batching"]["batches"] >= 1


class TestCachingAndBatching:
    def test_repeat_query_is_a_cache_hit(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                first = await client.query("Terminal(?x)")
                second = await client.query("Terminal(?x)")
                # alpha-equivalent query text shares the cache entry
                renamed = await client.query("Terminal(?whatever)")
                return first, second, renamed
            finally:
                await server.shutdown()

        first, second, renamed = asyncio.run(scenario())
        assert first["cached"] is False
        assert second["cached"] is True
        assert renamed["cached"] is True
        assert first["answers"] == second["answers"] == renamed["answers"]

    def test_identical_concurrent_queries_deduplicate(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                responses = await asyncio.gather(
                    *[client.query("Equipment(?x)") for _ in range(8)]
                )
                return responses, server.stats()
            finally:
                await server.shutdown()

        responses, stats = asyncio.run(scenario())
        assert len({tuple(map(tuple, r["answers"])) for r in responses}) == 1
        batching = stats["batching"]
        # 8 identical requests must evaluate strictly fewer than 8 times
        assert batching["evaluated"] < 8
        assert batching["evaluated"] + batching["dedup_saved"] + batching[
            "cache_hits"
        ] == 8

    def test_mutation_invalidates_cached_answers(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                before = await client.query("Equipment(?x)")
                await client.query("Equipment(?x)")  # warm the cache
                mutation = await client.add_facts("ACEquipment(sw9).")
                after = await client.query("Equipment(?x)")
                return before, mutation, after, server.stats()
            finally:
                await server.shutdown()

        before, mutation, after, stats = asyncio.run(scenario())
        assert mutation["ok"] is True
        assert mutation["generation"] == 1
        assert after["cached"] is False  # the add invalidated the entry
        assert after["generation"] == 1
        oracle = oracle_answers(kb, FACT_LINES + ["ACEquipment(sw9)."])
        assert after["answers"] == oracle["Equipment(?x)"]
        assert before["answers"] != after["answers"]
        assert stats["answer_cache"]["invalidations"] >= 1


class TestMutationConsistency:
    def test_interleaved_retraction_never_serves_stale_answers(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                clients = [server.local_client() for _ in range(3)]
                observed = []

                async def query_task(i):
                    response = await clients[i % 3].query(
                        QUERY_TEXTS[i % len(QUERY_TEXTS)]
                    )
                    observed.append(response)

                tasks = []
                for i in range(30):
                    tasks.append(asyncio.create_task(query_task(i)))
                    if i == 15:
                        tasks.append(
                            asyncio.create_task(
                                clients[0].retract_facts("ACEquipment(sw1).")
                            )
                        )
                await asyncio.gather(*tasks)
                return observed
            finally:
                await server.shutdown()

        observed = asyncio.run(scenario())
        oracles = {
            0: oracle_answers(kb, FACT_LINES),
            1: oracle_answers(
                kb, [line for line in FACT_LINES if line != "ACEquipment(sw1)."]
            ),
        }
        assert len(observed) == 30
        for response in observed:
            assert response["answers"] == oracles[response["generation"]][
                response["query"]
            ]

    def test_mutations_apply_in_submission_order(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                added = await client.add_facts("ACEquipment(sw9).")
                retracted = await client.retract_facts("ACEquipment(sw9).")
                final = await client.query("ACEquipment(?x)")
                return added, retracted, final
            finally:
                await server.shutdown()

        added, retracted, final = asyncio.run(scenario())
        assert added["generation"] == 1
        assert retracted["generation"] == 2
        assert retracted["retracted_facts"] == 1
        assert final["generation"] == 2
        assert ["sw9"] not in final["answers"]

    def test_shared_state_between_aliases_of_the_same_kb(self, kb):
        # two served names with the same sigma fingerprint AND the same
        # initial facts share one op log and one set of warm sessions
        async def scenario():
            facts = parse_facts("\n".join(FACT_LINES))
            server = ReasoningServer(
                [ServedKB("blue", kb, facts), ServedKB("green", kb, facts)]
            )
            await server.start()
            try:
                client = server.local_client()
                await client.add_facts("ACEquipment(sw9).", kb="blue")
                green = await client.query("ACEquipment(?x)", kb="green")
                stats = await client.stats()
                return green, stats
            finally:
                await server.shutdown()

        green, stats = asyncio.run(scenario())
        assert green["generation"] == 1  # blue's mutation is visible via green
        assert ["sw9"] in green["answers"]
        assert (
            stats["kbs"]["blue"]["share_key"] == stats["kbs"]["green"]["share_key"]
        )


class TestErrorHandling:
    def test_bad_query_text_is_an_error_response(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                return await server.handle_request(
                    {"id": 1, "op": "query", "query": "Equipment(?x"}
                )
            finally:
                await server.shutdown()

        response = asyncio.run(scenario())
        assert response["ok"] is False
        assert "bad query" in response["error"]
        assert response["id"] == 1

    def test_bad_facts_are_rejected_before_enqueue(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                bad = await server.handle_request(
                    {"id": 2, "op": "add", "facts": "NotAFact(?x)."}
                )
                # the rejected mutation must not have bumped the generation
                good = await server.local_client().query("Equipment(?x)")
                return bad, good
            finally:
                await server.shutdown()

        bad, good = asyncio.run(scenario())
        assert bad["ok"] is False
        assert good["generation"] == 0

    def test_unknown_kb_and_unknown_op(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                missing = await server.handle_request(
                    {"id": 3, "op": "query", "kb": "nope", "query": "Equipment(?x)"}
                )
                unknown = await server.handle_request({"id": 4, "op": "explode"})
                return missing, unknown
            finally:
                await server.shutdown()

        missing, unknown = asyncio.run(scenario())
        assert missing["ok"] is False and "nope" in missing["error"]
        assert unknown["ok"] is False and "unknown op" in unknown["error"]

    def test_client_helpers_raise_serve_error(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                with pytest.raises(ServeError, match="bad query"):
                    await server.local_client().query("Equipment(?x")
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_shutdown_refuses_new_work(self, kb):
        async def scenario():
            server = await make_server(kb)
            client = server.local_client()
            before = await client.query("Equipment(?x)")
            await server.shutdown()
            after = await client.request(
                {"id": 9, "op": "query", "query": "Equipment(?x)"}
            )
            return before, after

        before, after = asyncio.run(scenario())
        assert before["ok"] is True
        assert after["ok"] is False

    def test_rejects_duplicate_names_and_empty_serving_sets(self, kb):
        facts = parse_facts("\n".join(FACT_LINES))
        with pytest.raises(ValueError):
            ReasoningServer([])
        with pytest.raises(ValueError):
            ReasoningServer([ServedKB("cim", kb, facts), ServedKB("cim", kb, facts)])


class TestTcpPath:
    def test_tcp_clients_pipeline_over_one_connection(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                host, port = await server.start_tcp()
                client = await Client.connect(host, port)
                try:
                    responses = await asyncio.gather(
                        client.query("Equipment(?x)"),
                        client.query("Terminal(?x)"),
                        client.ping(),
                    )
                    stats = await client.stats()
                finally:
                    await client.close()
                return responses, stats
            finally:
                await server.shutdown()

        (equipment, terminal, pong), stats = asyncio.run(scenario())
        oracle = oracle_answers(kb, FACT_LINES)
        assert equipment["answers"] == oracle["Equipment(?x)"]
        assert terminal["answers"] == oracle["Terminal(?x)"]
        assert pong is True
        assert stats["protocol"] == "repro-serve/v1"

    def test_local_and_tcp_clients_serve_identical_answers(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                host, port = await server.start_tcp()
                tcp = await Client.connect(host, port)
                try:
                    over_tcp = await tcp.query("Equipment(?x)")
                finally:
                    await tcp.close()
                in_process = await LocalClient(server).query("Equipment(?x)")
                return over_tcp, in_process
            finally:
                await server.shutdown()

        over_tcp, in_process = asyncio.run(scenario())
        assert over_tcp["answers"] == in_process["answers"]


class TestQueryStrategies:
    def test_all_strategies_serve_identical_answers(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                responses = {}
                for strategy in (None, "auto", "materialized", "demand"):
                    responses[strategy] = await client.query(
                        "Equipment(?x)", strategy=strategy
                    )
                return responses
            finally:
                await server.shutdown()

        responses = asyncio.run(scenario())
        oracle = oracle_answers(kb, FACT_LINES)["Equipment(?x)"]
        for response in responses.values():
            assert response["answers"] == oracle

    def test_strategies_share_one_cache_entry(self, kb):
        # answers are strategy-invariant, so a demand answer must satisfy a
        # later materialized request for the same query from the cache
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                first = await client.query("Terminal(?x)", strategy="demand")
                second = await client.query(
                    "Terminal(?x)", strategy="materialized"
                )
                return first, second
            finally:
                await server.shutdown()

        first, second = asyncio.run(scenario())
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["answers"] == second["answers"]

    def test_stats_count_requested_and_effective_strategies(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                client = server.local_client()
                await client.query("Equipment(?x)", strategy="demand")
                await client.query("Terminal(?x)", strategy="materialized")
                await client.query("hasTerminal(?x, ?y)")  # auto by default
                return await client.stats()
            finally:
                await server.shutdown()

        stats = asyncio.run(scenario())
        requested = stats["batching"]["requests_by_strategy"]
        assert requested == {"auto": 1, "demand": 1, "materialized": 1}
        effective = stats["batching"]["evaluated_by_strategy"]
        # worker sessions are warm, so auto resolves to materialized; only
        # the explicit demand request runs the magic-sets path
        assert effective.get("demand", 0) == 1
        assert effective.get("materialized", 0) == 2
        assert "auto" not in effective

    def test_invalid_strategy_is_an_error_response(self, kb):
        async def scenario():
            server = await make_server(kb)
            try:
                return await server.handle_request(
                    {
                        "id": 5,
                        "op": "query",
                        "query": "Equipment(?x)",
                        "strategy": "telepathy",
                    }
                )
            finally:
                await server.shutdown()

        response = asyncio.run(scenario())
        assert response["ok"] is False
        assert "unknown strategy" in response["error"]


class TestProcessPoolTier:
    def test_pool_workers_serve_and_catch_up_after_mutations(self, kb):
        async def scenario():
            server = await make_server(kb, workers=1)
            try:
                await server.warm()
                client = server.local_client()
                before = await client.query("Equipment(?x)")
                await client.retract_facts("ACEquipment(sw1).")
                after = await client.query("Equipment(?x)")
                stats = await client.stats()
                return before, after, stats
            finally:
                await server.shutdown()

        before, after, stats = asyncio.run(scenario())
        oracle_before = oracle_answers(kb, FACT_LINES)
        oracle_after = oracle_answers(
            kb, [line for line in FACT_LINES if line != "ACEquipment(sw1)."]
        )
        assert before["answers"] == oracle_before["Equipment(?x)"]
        assert after["answers"] == oracle_after["Equipment(?x)"]
        assert stats["workers"]["mode"] == "pool"
