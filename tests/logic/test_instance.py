"""Unit tests for instances and Σ-guardedness."""

import pytest

from repro.logic.atoms import Atom, Predicate
from repro.logic.instance import (
    Instance,
    fact_guarded_by_fact,
    fact_guarded_by_set,
    guarded_subset,
    terms_guarded_by_fact,
    terms_guarded_by_set,
)
from repro.logic.terms import Constant, Null, Variable

R = Predicate("R", 2)
S = Predicate("S", 1)
a, b, c = Constant("a"), Constant("b"), Constant("c")
n1, n2 = Null(1), Null(2)


class TestInstance:
    def test_add_and_contains(self):
        instance = Instance()
        assert instance.add(R(a, b))
        assert not instance.add(R(a, b))
        assert R(a, b) in instance
        assert len(instance) == 1

    def test_non_ground_facts_rejected(self):
        with pytest.raises(ValueError):
            Instance([R(a, Variable("x"))])

    def test_base_instance_classification(self):
        assert Instance([R(a, b)]).is_base_instance
        assert not Instance([R(a, n1)]).is_base_instance

    def test_base_facts_projection(self):
        instance = Instance([R(a, b), R(a, n1)])
        assert instance.base_facts() == {R(a, b)}

    def test_constants_and_predicates(self):
        instance = Instance([R(a, b), S(c)])
        assert instance.constants() == {a, b, c}
        assert instance.predicates() == {R, S}

    def test_by_predicate(self):
        instance = Instance([R(a, b), S(c)])
        assert instance.by_predicate(S) == (S(c),)

    def test_update_counts_new_facts(self):
        instance = Instance([R(a, b)])
        assert instance.update([R(a, b), S(c)]) == 1

    def test_copy_is_independent(self):
        instance = Instance([R(a, b)])
        clone = instance.copy()
        clone.add(S(c))
        assert len(instance) == 1
        assert len(clone) == 2

    def test_equality_with_sets(self):
        assert Instance([R(a, b)]) == {R(a, b)}


class TestGuardedness:
    def test_terms_guarded_by_fact(self):
        assert terms_guarded_by_fact({a, b}, R(a, b), frozenset())
        assert not terms_guarded_by_fact({a, c}, R(a, b), frozenset())

    def test_sigma_constants_are_always_available(self):
        assert terms_guarded_by_fact({a, c}, R(a, b), frozenset({c}))

    def test_terms_guarded_by_set(self):
        facts = [R(a, b), R(b, c)]
        assert terms_guarded_by_set({b, c}, facts, frozenset())
        assert not terms_guarded_by_set({a, c}, facts, frozenset())

    def test_fact_guarded_by_fact(self):
        assert fact_guarded_by_fact(S(a), R(a, b), frozenset())
        assert not fact_guarded_by_fact(S(c), R(a, b), frozenset())

    def test_fact_guarded_by_set(self):
        assert fact_guarded_by_set(R(b, a), [R(a, b)], frozenset())
        assert not fact_guarded_by_set(R(b, c), [R(a, b)], frozenset())

    def test_guarded_subset(self):
        candidates = [S(a), S(c), R(a, n1)]
        guards = [R(a, n1)]
        selected = guarded_subset(candidates, guards, frozenset())
        assert set(selected) == {S(a), R(a, n1)}

    def test_guarded_subset_with_sigma_constants(self):
        candidates = [S(c)]
        guards = [R(a, b)]
        assert guarded_subset(candidates, guards, frozenset({c})) == (S(c),)
