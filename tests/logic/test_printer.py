"""Unit tests for the pretty printers."""

import pytest

from repro.logic.atoms import Atom, Predicate
from repro.logic.parser import parse_tgd
from repro.logic.printer import (
    format_atom,
    format_datalog_program,
    format_datalog_rule,
    format_fact,
    format_rule,
    format_term,
    format_tgd,
)
from repro.logic.rules import Rule
from repro.logic.terms import Constant, FunctionSymbol, Variable

A = Predicate("A", 1)
B = Predicate("B", 2)
x, y = Variable("x"), Variable("y")
f = FunctionSymbol("f", 1, is_skolem=True)


class TestTermAndAtomFormatting:
    def test_variable_gets_question_mark(self):
        assert format_term(x) == "?x"

    def test_constant_is_bare(self):
        assert format_term(Constant("a")) == "a"

    def test_function_term(self):
        assert format_term(f(x)) == "f(?x)"

    def test_atom(self):
        assert format_atom(B(x, Constant("a"))) == "B(?x, a)"

    def test_zero_arity_atom(self):
        assert format_atom(Atom(Predicate("Go", 0), ())) == "Go"

    def test_fact(self):
        assert format_fact(A(Constant("a"))) == "A(a)."


class TestTGDFormatting:
    def test_full_tgd(self):
        tgd = parse_tgd("A(?x) -> B(?x, ?x).")
        assert format_tgd(tgd) == "A(?x) -> B(?x, ?x)."

    def test_existential_prefix_is_explicit(self):
        tgd = parse_tgd("A(?x) -> exists ?y. B(?x, ?y).")
        assert "exists ?y." in format_tgd(tgd)

    def test_round_trip(self):
        source = "A(?x1, ?x2), B(?x2, ?x2) -> exists ?y. C(?x1, ?y)."
        tgd = parse_tgd(source)
        assert parse_tgd(format_tgd(tgd)) == tgd


class TestRuleFormatting:
    def test_skolem_rule(self):
        rule = Rule((A(x),), B(x, f(x)))
        assert format_rule(rule) == "A(?x) -> B(?x, f(?x))."

    def test_datalog_syntax(self):
        rule = Rule((A(x), B(x, y)), A(y))
        assert format_datalog_rule(rule) == "A(?y) :- A(?x), B(?x, ?y)."

    def test_datalog_fact_rule(self):
        rule = Rule((), A(Constant("a")))
        assert format_datalog_rule(rule) == "A(a)."

    def test_datalog_syntax_rejects_skolem_rules(self):
        rule = Rule((A(x),), B(x, f(x)))
        with pytest.raises(ValueError):
            format_datalog_rule(rule)

    def test_datalog_program(self):
        rules = [Rule((A(x),), B(x, x)), Rule((B(x, y),), A(x))]
        text = format_datalog_program(rules)
        assert text.count(":-") == 2
        assert text.count("\n") == 1
