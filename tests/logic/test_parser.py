"""Unit tests for the dependency/fact parser."""

import pytest

from repro.logic.parser import (
    DependencyParser,
    ParseError,
    parse_atom,
    parse_fact,
    parse_facts,
    parse_program,
    parse_tgd,
    parse_tgds,
)
from repro.logic.terms import Constant, Variable


class TestAtomParsing:
    def test_simple_atom(self):
        atom = parse_atom("R(?x, a)")
        assert atom.predicate.name == "R"
        assert atom.args == (Variable("x"), Constant("a"))

    def test_zero_arity_atom(self):
        atom = parse_atom("Alive()")
        assert atom.predicate.arity == 0

    def test_propositional_atom_without_parentheses(self):
        atom = parse_atom("Alive")
        assert atom.predicate.arity == 0

    def test_fact_requires_groundness(self):
        with pytest.raises(ParseError):
            parse_fact("R(?x, a).")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(?x; a)")


class TestTGDParsing:
    def test_full_tgd(self):
        tgd = parse_tgd("A(?x), B(?x, ?y) -> C(?y).")
        assert tgd.is_full
        assert len(tgd.body) == 2

    def test_existential_tgd_with_prefix(self):
        tgd = parse_tgd("A(?x) -> exists ?y. B(?x, ?y).")
        assert tgd.existential_variables == {Variable("y")}

    def test_existential_tgd_without_prefix(self):
        """Head variables missing from the body are existential even if undeclared."""
        tgd = parse_tgd("A(?x) -> B(?x, ?y).")
        assert tgd.existential_variables == {Variable("y")}

    def test_declared_existentials_must_match(self):
        with pytest.raises(ParseError):
            parse_tgd("A(?x) -> exists ?y, ?z. B(?x, ?y).")

    def test_ampersand_conjunction(self):
        tgd = parse_tgd("A(?x) & B(?x) -> C(?x).")
        assert len(tgd.body) == 2

    def test_missing_period_rejected(self):
        with pytest.raises(ParseError):
            parse_tgds("A(?x) -> B(?x)")

    def test_parse_tgd_accepts_missing_trailing_period(self):
        tgd = parse_tgd("A(?x) -> B(?x)")
        assert tgd.is_full


class TestProgramParsing:
    def test_program_with_tgds_and_facts(self, running_program_text):
        program = parse_program(running_program_text)
        assert len(program.tgds) == 6
        assert len(program.instance) == 1

    def test_comments_are_ignored(self):
        program = parse_program(
            """
            % a comment line
            A(?x) -> B(?x).  % trailing comment
            # another comment style
            A(a).
            """
        )
        assert len(program.tgds) == 1
        assert len(program.instance) == 1

    def test_predicates_are_interned_per_parser(self):
        parser = DependencyParser()
        first = parser.parse_atom("R(?x, ?y)")
        second = parser.parse_atom("R(a, b)")
        assert first.predicate is second.predicate

    def test_arity_is_inferred_per_occurrence(self):
        program = parse_program("R(?x) -> S(?x). R(a, b).")
        predicates = {(p.name, p.arity) for p in program.instance.predicates()}
        assert predicates == {("R", 2)}

    def test_parse_facts_rejects_tgds(self):
        with pytest.raises(ParseError):
            parse_facts("A(?x) -> B(?x).")

    def test_parse_tgds_rejects_facts(self):
        with pytest.raises(ParseError):
            parse_tgds("A(a).")

    def test_multi_atom_fact_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_program("A(a), B(b).")

    def test_error_mentions_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("A(?x) -> B(?x).\nA(?x) -> .")
        assert "line 2" in str(excinfo.value)


class TestRoundTrip:
    def test_program_round_trips_through_printer(self, running_program_text):
        from repro.logic.printer import format_program

        program = parse_program(running_program_text)
        text = format_program(program.tgds, program.instance)
        reparsed = parse_program(text)
        assert set(reparsed.tgds) == set(program.tgds)
        assert reparsed.instance == program.instance
