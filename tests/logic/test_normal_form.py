"""Unit tests for canonical variable normalization (Section 6)."""

from repro.logic.normal_form import (
    deduplicate_normalized,
    normalize,
    normalize_rule,
    normalize_tgd,
)
from repro.logic.parser import parse_tgd
from repro.logic.atoms import Predicate
from repro.logic.rules import Rule
from repro.logic.terms import FunctionSymbol, Variable

A = Predicate("A", 1)
B = Predicate("B", 2)
x, y, u, v = Variable("x"), Variable("y"), Variable("u"), Variable("v")
f = FunctionSymbol("f", 1, is_skolem=True)


class TestTGDNormalization:
    def test_variable_renamings_are_identified(self):
        first = parse_tgd("A(?u), B(?u, ?v) -> C(?v).")
        second = parse_tgd("A(?p), B(?p, ?q) -> C(?q).")
        assert normalize_tgd(first) == normalize_tgd(second)

    def test_distinct_tgds_stay_distinct(self):
        first = parse_tgd("A(?u), B(?u, ?v) -> C(?v).")
        second = parse_tgd("A(?u), B(?v, ?u) -> C(?v).")
        assert normalize_tgd(first) != normalize_tgd(second)

    def test_body_order_is_canonicalized(self):
        first = parse_tgd("A(?u), B(?u, ?v) -> C(?u).")
        second = parse_tgd("B(?u, ?v), A(?u) -> C(?u).")
        assert normalize_tgd(first) == normalize_tgd(second)

    def test_universal_variables_become_x_names(self):
        normalized = normalize_tgd(parse_tgd("A(?p) -> exists ?q. B(?p, ?q)."))
        names = {var.name for var in normalized.universal_variables}
        assert all(name.startswith("x") for name in names)
        exist_names = {var.name for var in normalized.existential_variables}
        assert all(name.startswith("y") for name in exist_names)

    def test_idempotent(self):
        tgd = parse_tgd("A(?p), B(?p, ?q) -> exists ?r. C(?q, ?r).")
        assert normalize_tgd(normalize_tgd(tgd)) == normalize_tgd(tgd)

    def test_normalization_preserves_logical_structure(self):
        tgd = parse_tgd("A(?p), B(?p, ?q) -> exists ?r. C(?q, ?r).")
        normalized = normalize_tgd(tgd)
        assert len(normalized.body) == len(tgd.body)
        assert len(normalized.head) == len(tgd.head)
        assert len(normalized.existential_variables) == len(tgd.existential_variables)
        assert normalized.is_guarded == tgd.is_guarded


class TestRuleNormalization:
    def test_variable_renamings_are_identified(self):
        first = Rule((A(u), B(u, v)), A(v))
        second = Rule((A(x), B(x, y)), A(y))
        assert normalize_rule(first) == normalize_rule(second)

    def test_skolem_terms_survive_normalization(self):
        rule = Rule((A(u),), B(u, f(u)))
        normalized = normalize_rule(rule)
        assert not normalized.head.is_function_free

    def test_idempotent(self):
        rule = Rule((A(u), B(u, v)), A(v))
        assert normalize_rule(normalize_rule(rule)) == normalize_rule(rule)


class TestDispatchersAndDedup:
    def test_normalize_dispatch(self):
        assert normalize(parse_tgd("A(?x) -> B(?x, ?x).")) == normalize_tgd(
            parse_tgd("A(?x) -> B(?x, ?x).")
        )
        rule = Rule((A(x),), A(x))
        assert normalize(rule) == normalize_rule(rule)

    def test_normalize_rejects_other_types(self):
        import pytest

        with pytest.raises(TypeError):
            normalize("not a clause")

    def test_deduplicate_normalized(self):
        items = [
            parse_tgd("A(?u) -> B(?u, ?u)."),
            parse_tgd("A(?w) -> B(?w, ?w)."),
            parse_tgd("A(?u) -> B(?u, ?v)."),
        ]
        deduplicated = deduplicate_normalized(items)
        assert len(deduplicated) == 2
