"""Unit tests for substitutions."""

import pytest

from repro.logic.atoms import Atom, Predicate
from repro.logic.substitution import (
    EMPTY_SUBSTITUTION,
    Substitution,
    fresh_variable_renaming,
)
from repro.logic.terms import Constant, FunctionSymbol, Variable

R = Predicate("R", 2)
x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")
f = FunctionSymbol("f", 1)


class TestApplication:
    def test_apply_to_variable(self):
        sub = Substitution({x: a})
        assert sub.apply_term(x) == a
        assert sub.apply_term(y) == y

    def test_apply_to_constant_is_identity(self):
        sub = Substitution({x: a})
        assert sub.apply_term(b) == b

    def test_apply_inside_function_terms(self):
        sub = Substitution({x: a})
        assert sub.apply_term(f(x)) == f(a)

    def test_apply_to_atom(self):
        sub = Substitution({x: a, y: b})
        assert sub.apply_atom(R(x, y)) == R(a, b)

    def test_apply_returns_same_object_when_unchanged(self):
        sub = Substitution({z: a})
        atom = R(x, y)
        assert sub.apply_atom(atom) is atom

    def test_apply_to_atom_collection(self):
        sub = Substitution({x: a})
        assert sub.apply_atoms([R(x, y), R(y, x)]) == (R(a, y), R(y, a))

    def test_callable_dispatch(self):
        sub = Substitution({x: a})
        assert sub(x) == a
        assert sub(R(x, y)) == R(a, y)
        assert sub([R(x, y)]) == (R(a, y),)


class TestConstruction:
    def test_empty_substitution_is_falsy(self):
        assert not EMPTY_SUBSTITUTION
        assert len(EMPTY_SUBSTITUTION) == 0

    def test_extend(self):
        sub = Substitution({x: a}).extend(y, b)
        assert sub[y] == b
        assert sub[x] == a

    def test_extend_conflict_raises(self):
        with pytest.raises(ValueError):
            Substitution({x: a}).extend(x, b)

    def test_extend_same_binding_is_allowed(self):
        sub = Substitution({x: a}).extend(x, a)
        assert sub[x] == a

    def test_merge_compatible(self):
        merged = Substitution({x: a}).merge(Substitution({y: b}))
        assert merged is not None
        assert merged[x] == a and merged[y] == b

    def test_merge_conflict_returns_none(self):
        assert Substitution({x: a}).merge(Substitution({x: b})) is None

    def test_compose_applies_left_then_right(self):
        first = Substitution({x: y})
        second = Substitution({y: a})
        composed = first.compose(second)
        assert composed.apply_term(x) == a
        assert composed.apply_term(y) == a

    def test_restrict_and_without(self):
        sub = Substitution({x: a, y: b})
        assert set(sub.restrict([x]).domain()) == {x}
        assert set(sub.without([x]).domain()) == {y}

    def test_is_renaming(self):
        assert Substitution({x: y, y: z}).is_renaming()
        assert not Substitution({x: a}).is_renaming()
        assert not Substitution({x: z, y: z}).is_renaming()


class TestFreshRenaming:
    def test_fresh_variable_renaming_is_injective(self):
        renaming = fresh_variable_renaming([x, y], "s")
        images = {renaming[x], renaming[y]}
        assert len(images) == 2
        assert all(isinstance(term, Variable) for term in images)

    def test_fresh_names_contain_suffix(self):
        renaming = fresh_variable_renaming([x], "42")
        assert "42" in renaming[x].name


class TestEqualityAndRepr:
    def test_equality(self):
        assert Substitution({x: a}) == Substitution({x: a})
        assert Substitution({x: a}) != Substitution({x: b})

    def test_hashable(self):
        assert hash(Substitution({x: a})) == hash(Substitution({x: a}))

    def test_repr_contains_bindings(self):
        assert "x" in repr(Substitution({x: a}))
