"""Unit tests for terms: constants, variables, nulls, functional terms."""

import pytest

from repro.logic.terms import (
    Constant,
    FunctionSymbol,
    FunctionTerm,
    Null,
    TermFactory,
    Variable,
    constants_of,
    nulls_of,
    variables_of,
)


class TestBasicTerms:
    def test_constant_equality_and_hash(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert hash(Constant("a")) == hash(Constant("a"))

    def test_variable_equality_and_hash(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert hash(Variable("x")) == hash(Variable("x"))

    def test_constant_and_variable_are_distinct(self):
        assert Constant("x") != Variable("x")

    def test_null_equality(self):
        assert Null(3) == Null(3)
        assert Null(3) != Null(4)

    def test_groundness(self):
        assert Constant("a").is_ground
        assert Null(0).is_ground
        assert not Variable("x").is_ground

    def test_string_rendering(self):
        assert str(Constant("a")) == "a"
        assert str(Variable("x")) == "?x"
        assert str(Null(7)) == "_:n7"

    def test_depth_of_atomic_terms(self):
        assert Constant("a").depth == 0
        assert Variable("x").depth == 0
        assert Null(0).depth == 0


class TestFunctionTerms:
    def test_arity_is_enforced(self):
        f = FunctionSymbol("f", 2)
        with pytest.raises(ValueError):
            FunctionTerm(f, (Variable("x"),))

    def test_call_syntax_builds_terms(self):
        f = FunctionSymbol("f", 1)
        term = f(Variable("x"))
        assert isinstance(term, FunctionTerm)
        assert term.symbol == f

    def test_groundness_of_function_terms(self):
        f = FunctionSymbol("f", 2)
        assert f(Constant("a"), Constant("b")).is_ground
        assert not f(Constant("a"), Variable("x")).is_ground

    def test_depth_of_nested_terms(self):
        f = FunctionSymbol("f", 1)
        g = FunctionSymbol("g", 1)
        assert f(Constant("a")).depth == 1
        assert f(g(Variable("x"))).depth == 2

    def test_variables_of_nested_terms(self):
        f = FunctionSymbol("f", 2)
        term = f(Variable("x"), f(Variable("y"), Constant("a")))
        assert set(term.variables()) == {Variable("x"), Variable("y")}
        assert set(term.constants()) == {Constant("a")}

    def test_function_symbols_iteration(self):
        f = FunctionSymbol("f", 1)
        g = FunctionSymbol("g", 1)
        term = f(g(Constant("a")))
        assert [sym.name for sym in term.function_symbols()] == ["f", "g"]

    def test_equality_requires_same_symbol_and_args(self):
        f = FunctionSymbol("f", 1)
        g = FunctionSymbol("g", 1)
        assert f(Constant("a")) == f(Constant("a"))
        assert f(Constant("a")) != g(Constant("a"))
        assert f(Constant("a")) != f(Constant("b"))

    def test_skolem_flag_distinguishes_symbols(self):
        assert FunctionSymbol("f", 1, is_skolem=True) != FunctionSymbol(
            "f", 1, is_skolem=False
        )


class TestSymbolCollectors:
    def test_variables_of_preserves_first_occurrence_order(self):
        terms = [Variable("b"), Variable("a"), Variable("b")]
        assert variables_of(terms) == (Variable("b"), Variable("a"))

    def test_constants_of(self):
        f = FunctionSymbol("f", 1)
        terms = [Constant("c"), f(Constant("d")), Variable("x")]
        assert constants_of(terms) == (Constant("c"), Constant("d"))

    def test_nulls_of(self):
        terms = [Null(1), Constant("a"), Null(2), Null(1)]
        assert nulls_of(terms) == (Null(1), Null(2))


class TestTermFactory:
    def test_interning_returns_identical_objects(self):
        factory = TermFactory()
        assert factory.constant("a") is factory.constant("a")
        assert factory.variable("x") is factory.variable("x")

    def test_fresh_nulls_are_distinct(self):
        factory = TermFactory()
        nulls = {factory.fresh_null() for _ in range(10)}
        assert len(nulls) == 10
