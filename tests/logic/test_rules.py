"""Unit tests for Skolemized rules and Definition 5.9 guardedness."""

import pytest

from repro.logic.atoms import Atom, Predicate
from repro.logic.parser import parse_tgd
from repro.logic.rules import (
    Rule,
    datalog_rules,
    datalog_tgd_to_rule,
    rule_to_datalog_tgd,
)
from repro.logic.terms import Constant, FunctionSymbol, Variable

A = Predicate("A", 1)
B = Predicate("B", 2)
C = Predicate("C", 2)
x, y = Variable("x"), Variable("y")
f = FunctionSymbol("f", 1, is_skolem=True)
g_plain = FunctionSymbol("g", 1, is_skolem=False)


class TestRuleConstruction:
    def test_head_variables_must_occur_in_body(self):
        with pytest.raises(ValueError):
            Rule((A(x),), B(x, y))

    def test_skolem_free_classification(self):
        rule = Rule((A(x),), B(x, x))
        assert rule.is_skolem_free
        assert rule.is_datalog_rule

    def test_skolem_head_not_datalog(self):
        rule = Rule((A(x),), B(x, f(x)))
        assert not rule.is_skolem_free
        assert not rule.is_datalog_rule
        assert rule.body_is_skolem_free

    def test_syntactic_tautology(self):
        assert Rule((A(x), B(x, x)), A(x)).is_syntactic_tautology
        assert not Rule((A(x),), B(x, x)).is_syntactic_tautology

    def test_size_and_width(self):
        rule = Rule((A(x), B(x, y)), C(x, y))
        assert rule.size == 3
        assert rule.width == 2


class TestGuardedness:
    def test_simple_guarded_rule(self):
        # Skolemization of A(x) -> exists y. B(x, y)
        rule = Rule((A(x),), B(x, f(x)))
        assert rule.is_guarded
        assert rule.guards() == (A(x),)

    def test_guard_must_be_skolem_free(self):
        rule = Rule((B(x, f(x)),), A(x))
        # the only body atom contains a Skolem term, so no guard exists
        assert not rule.is_guarded

    def test_skolem_term_must_contain_all_variables(self):
        # f(x) does not contain y, so the rule violates Definition 5.9
        rule = Rule((B(x, y),), C(x, f(x)))
        assert not rule.is_guarded

    def test_non_skolem_function_symbols_forbidden(self):
        rule = Rule((A(x),), B(x, g_plain(x)))
        assert not rule.is_guarded

    def test_nested_skolem_terms_forbidden(self):
        f2 = FunctionSymbol("f2", 1, is_skolem=True)
        rule = Rule((A(x),), B(x, f(x)))
        nested = Rule((A(x),), B(x, f2(Variable("x"))))
        assert rule.is_guarded and nested.is_guarded
        deep = Rule((A(x),), Atom(B, (x, FunctionSymbol("h", 1, True)(f(x)))))
        assert not deep.is_guarded

    def test_datalog_guard_contains_all_variables(self):
        rule = Rule((B(x, y), A(x)), A(y))
        assert rule.is_guarded
        assert rule.guards() == (B(x, y),)


class TestConversions:
    def test_rule_to_tgd_round_trip(self):
        tgd = parse_tgd("A(?x), B(?x, ?y) -> C(?x, ?y).")
        rule = datalog_tgd_to_rule(tgd)
        assert rule_to_datalog_tgd(rule) == tgd

    def test_rule_to_tgd_rejects_skolem_rules(self):
        rule = Rule((A(x),), B(x, f(x)))
        with pytest.raises(ValueError):
            rule_to_datalog_tgd(rule)

    def test_tgd_to_rule_rejects_non_full(self):
        tgd = parse_tgd("A(?x) -> exists ?y. B(?x, ?y).")
        with pytest.raises(ValueError):
            datalog_tgd_to_rule(tgd)

    def test_datalog_rules_filter(self):
        rules = [Rule((A(x),), B(x, x)), Rule((A(x),), B(x, f(x)))]
        assert datalog_rules(rules) == (rules[0],)


class TestTransformations:
    def test_apply_substitution(self):
        from repro.logic.substitution import Substitution

        rule = Rule((A(x),), B(x, x))
        applied = rule.apply(Substitution({x: Constant("a")}))
        assert applied.head == B(Constant("a"), Constant("a"))

    def test_rename_apart(self):
        rule = Rule((A(x), B(x, y)), C(x, y))
        renamed = rule.rename_apart("z")
        assert not (rule.variables() & renamed.variables())
        assert len(renamed.variables()) == 2

    def test_equality_and_str(self):
        rule = Rule((A(x),), B(x, x))
        assert rule == Rule((A(x),), B(x, x))
        assert "A(?x)" in str(rule)
