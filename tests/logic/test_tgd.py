"""Unit tests for TGDs: classification, guardedness, widths, head-normal form."""

import pytest

from repro.logic.atoms import Atom, Predicate
from repro.logic.parser import parse_tgd, parse_tgds
from repro.logic.terms import Constant, Variable
from repro.logic.tgd import (
    TGD,
    all_guarded,
    bwidth,
    head_normalize,
    hwidth,
    program_constants,
    split_full_non_full,
)


class TestVariableStructure:
    def test_universal_existential_frontier(self):
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y).")
        assert tgd.universal_variables == {Variable("x1"), Variable("x2")}
        assert tgd.existential_variables == {Variable("y")}
        assert tgd.frontier == {Variable("x1")}

    def test_full_tgd_has_no_existentials(self):
        tgd = parse_tgd("A(?x1, ?x2) -> B(?x1, ?x2).")
        assert tgd.is_full
        assert not tgd.existential_variables

    def test_empty_head_rejected(self):
        with pytest.raises(ValueError):
            TGD((Atom(Predicate("A", 1), (Variable("x"),)),), ())

    def test_constants_collected(self):
        tgd = parse_tgd("A(?x, c) -> B(?x, d).")
        assert set(tgd.constants()) == {Constant("c"), Constant("d")}


class TestClassification:
    def test_datalog_rule(self):
        assert parse_tgd("A(?x) -> B(?x).").is_datalog_rule
        assert not parse_tgd("A(?x) -> B(?x), C(?x).").is_datalog_rule
        assert not parse_tgd("A(?x) -> exists ?y. B(?x, ?y).").is_datalog_rule

    def test_head_normal_full(self):
        assert parse_tgd("A(?x) -> B(?x).").is_head_normal
        assert not parse_tgd("A(?x) -> B(?x), C(?x).").is_head_normal

    def test_head_normal_non_full(self):
        assert parse_tgd("A(?x) -> exists ?y. B(?x, ?y), C(?x, ?y).").is_head_normal
        # head atom C(?x) has no existential variable, so not head-normal
        assert not parse_tgd(
            "A(?x) -> exists ?y. B(?x, ?y), C(?x)."
        ).is_head_normal

    def test_syntactic_tautology(self):
        assert parse_tgd("A(?x), B(?x) -> A(?x).").is_syntactic_tautology
        assert not parse_tgd("A(?x) -> B(?x).").is_syntactic_tautology
        # Example 5.2: non-full TGDs in head-normal form are never tautologies
        assert not parse_tgd("A(?x) -> exists ?y. A(?x, ?y).").is_syntactic_tautology


class TestGuardedness:
    def test_single_atom_body_is_guarded(self):
        assert parse_tgd("A(?x1, ?x2) -> B(?x1).").is_guarded

    def test_guard_must_cover_all_universal_variables(self):
        guarded = parse_tgd("R(?x, ?z), T(?z) -> E(?x).")
        assert guarded.is_guarded
        assert guarded.guards() == (guarded.body[0],)
        unguarded = parse_tgd("A(?x), B(?y) -> C(?x, ?y).")
        assert not unguarded.is_guarded

    def test_guard_need_not_be_unique(self):
        tgd = parse_tgd("R(?x, ?y), S(?x, ?y) -> E(?x).")
        assert len(tgd.guards()) == 2

    def test_all_guarded(self, running):
        tgds, _ = running
        assert all_guarded(tgds)


class TestWidths:
    def test_body_and_head_width(self):
        tgd = parse_tgd("A(?x1, ?x2), B(?x2, ?x3) -> exists ?y. C(?x1, ?y).")
        assert tgd.body_width == 3
        assert tgd.head_width == 2
        assert tgd.width == 4

    def test_width_aggregates(self):
        tgds = parse_tgds(
            """
            A(?x1, ?x2) -> B(?x1).
            C(?x1) -> exists ?y1, ?y2. D(?x1, ?y1, ?y2).
            """
        )
        assert bwidth(tgds) == 2
        assert hwidth(tgds) == 3

    def test_size_counts_atoms(self):
        assert parse_tgd("A(?x), B(?x) -> C(?x).").size == 3


class TestHeadNormalForm:
    def test_full_multi_head_splits(self):
        tgd = parse_tgd("A(?x) -> B(?x), C(?x).")
        normalized = tgd.head_normal_form()
        assert len(normalized) == 2
        assert all(t.is_datalog_rule for t in normalized)

    def test_non_full_mixed_head_splits(self):
        tgd = parse_tgd("A(?x) -> exists ?y. B(?x, ?y), C(?x).")
        normalized = tgd.head_normal_form()
        kinds = sorted(t.is_full for t in normalized)
        assert kinds == [False, True]
        full = [t for t in normalized if t.is_full][0]
        assert full.head[0].predicate.name == "C"

    def test_already_normal_returns_itself(self):
        tgd = parse_tgd("A(?x) -> exists ?y. B(?x, ?y).")
        assert tgd.head_normal_form() == (tgd,)

    def test_head_normalize_deduplicates(self):
        tgds = parse_tgds(
            """
            A(?x) -> B(?x), C(?x).
            A(?x) -> B(?x).
            """
        )
        normalized = head_normalize(tgds)
        # splitting the first TGD yields A->B and A->C; the second TGD is an
        # exact duplicate of the first split and is removed
        assert len(normalized) == 2
        assert all(t.is_head_normal for t in normalized)

    def test_equivalence_of_entailed_facts(self):
        """Head normalization preserves the certain base facts."""
        from repro.chase import certain_base_facts
        from repro.logic import parse_program

        program = parse_program(
            """
            A(?x) -> exists ?y. R(?x, ?y), B(?x), C(?x).
            B(?x), C(?x) -> D(?x).
            A(a).
            """
        )
        original = certain_base_facts(program.instance, program.tgds)
        normalized = certain_base_facts(program.instance, head_normalize(program.tgds))
        assert original == normalized


class TestTransformations:
    def test_apply_substitution(self):
        from repro.logic.substitution import Substitution

        tgd = parse_tgd("A(?x) -> B(?x).")
        result = tgd.apply(Substitution({Variable("x"): Constant("a")}))
        assert result.body[0].args == (Constant("a"),)

    def test_rename_apart_changes_all_variables(self):
        tgd = parse_tgd("A(?x) -> exists ?y. B(?x, ?y).")
        renamed = tgd.rename_apart("k")
        assert not (tgd.variables() & renamed.variables())

    def test_split_full_non_full(self, running):
        tgds, _ = running
        full, non_full = split_full_non_full(tgds)
        assert len(full) == 4
        assert len(non_full) == 2

    def test_program_constants(self):
        tgds = parse_tgds("A(?x) -> B(?x, c).")
        assert program_constants(tgds) == {Constant("c")}

    def test_str_round_trips_through_parser(self):
        from repro.logic.printer import format_tgd

        tgd = parse_tgd("A(?x1, ?x2), B(?x2, ?x2) -> exists ?y. C(?x1, ?y).")
        assert parse_tgd(format_tgd(tgd)) == tgd
