"""Unit tests for Skolemization."""

from repro.logic.parser import parse_tgd, parse_tgds
from repro.logic.skolem import SkolemFactory, count_existentials, skolemize, skolemize_tgd
from repro.logic.terms import FunctionTerm


class TestSkolemizeSingleTGD:
    def test_one_rule_per_head_atom(self):
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y), C(?x1, ?y).")
        rules = skolemize_tgd(tgd, SkolemFactory())
        assert len(rules) == 2
        predicates = {rule.head.predicate.name for rule in rules}
        assert predicates == {"B", "C"}

    def test_same_existential_gets_same_skolem_term(self):
        """Rules (22)–(23): both heads talk about the same labeled nulls."""
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y), C(?x1, ?y).")
        rules = skolemize_tgd(tgd, SkolemFactory())
        terms = []
        for rule in rules:
            for arg in rule.head.args:
                if isinstance(arg, FunctionTerm):
                    terms.append(arg)
        assert len(terms) == 2
        assert terms[0] == terms[1]

    def test_distinct_existentials_get_distinct_symbols(self):
        """Rules (24)–(25): y1 and y2 map to different Skolem symbols."""
        tgd = parse_tgd(
            "A(?x1, ?x2), E(?x1) -> exists ?y1, ?y2. F(?x1, ?y1), F(?y1, ?y2)."
        )
        rules = skolemize_tgd(tgd, SkolemFactory())
        symbols = set()
        for rule in rules:
            for arg in rule.head.args:
                if isinstance(arg, FunctionTerm):
                    symbols.add(arg.symbol)
        assert len(symbols) == 2

    def test_skolem_arguments_are_the_universal_variables(self):
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y).")
        (rule,) = skolemize_tgd(tgd, SkolemFactory())
        skolem_term = rule.head.args[1]
        assert isinstance(skolem_term, FunctionTerm)
        assert set(skolem_term.variables()) == tgd.universal_variables

    def test_full_tgd_is_unchanged_modulo_representation(self):
        tgd = parse_tgd("A(?x) -> B(?x).")
        (rule,) = skolemize_tgd(tgd, SkolemFactory())
        assert rule.is_skolem_free
        assert rule.head.predicate.name == "B"

    def test_skolemized_rules_are_guarded(self, running):
        tgds, _ = running
        for rule in skolemize(tgds):
            assert rule.is_guarded


class TestSkolemizeSets:
    def test_same_tgd_shares_symbols_across_calls_with_same_factory(self):
        tgd = parse_tgd("A(?x) -> exists ?y. B(?x, ?y).")
        factory = SkolemFactory()
        first = skolemize_tgd(tgd, factory)
        second = skolemize_tgd(tgd, factory)
        assert first == second

    def test_different_tgds_get_different_symbols(self):
        tgds = parse_tgds(
            """
            A(?x) -> exists ?y. B(?x, ?y).
            C(?x) -> exists ?y. B(?x, ?y).
            """
        )
        rules = skolemize(tgds)
        symbols = set()
        for rule in rules:
            for arg in rule.head.args:
                if isinstance(arg, FunctionTerm):
                    symbols.add(arg.symbol)
        assert len(symbols) == 2

    def test_deduplication(self):
        tgds = parse_tgds(
            """
            A(?x) -> B(?x).
            A(?x) -> B(?x).
            """
        )
        assert len(skolemize(tgds)) == 1

    def test_count_existentials(self):
        tgds = parse_tgds(
            """
            A(?x) -> exists ?y1, ?y2. B(?x, ?y1), B(?x, ?y2).
            C(?x) -> D(?x).
            """
        )
        assert count_existentials(tgds) == 2

    def test_entailment_preserved_by_skolemization(self):
        """I, Σ |= F iff I, sk(Σ) |= F — checked via the two chase engines."""
        from repro.chase import certain_base_facts
        from repro.chase.skolem_chase import skolem_chase_base_facts
        from repro.logic import parse_program

        program = parse_program(
            """
            A(?x) -> exists ?y. R(?x, ?y), B(?y).
            R(?x, ?z), B(?z) -> C(?x).
            A(a).
            """
        )
        exact = certain_base_facts(program.instance, program.tgds)
        skolem = skolem_chase_base_facts(program.instance, program.tgds, max_term_depth=3)
        assert skolem == exact
