"""Unit tests for predicates, atoms, and facts."""

import pytest

from repro.logic.atoms import (
    Atom,
    Predicate,
    atom_constants,
    atom_variables,
    predicates_of,
)
from repro.logic.terms import Constant, FunctionSymbol, Null, Variable


class TestPredicate:
    def test_equality_includes_arity(self):
        assert Predicate("R", 2) == Predicate("R", 2)
        assert Predicate("R", 2) != Predicate("R", 3)

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Predicate("R", -1)

    def test_call_builds_atom(self):
        r = Predicate("R", 2)
        atom = r(Constant("a"), Variable("x"))
        assert isinstance(atom, Atom)
        assert atom.predicate == r


class TestAtomConstruction:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Atom(Predicate("R", 2), (Constant("a"),))

    def test_zero_arity_atom(self):
        atom = Atom(Predicate("Go", 0), ())
        assert atom.is_ground
        assert str(atom) == "Go"

    def test_equality_and_hash(self):
        r = Predicate("R", 2)
        assert r(Constant("a"), Variable("x")) == r(Constant("a"), Variable("x"))
        assert hash(r(Constant("a"), Variable("x"))) == hash(
            r(Constant("a"), Variable("x"))
        )
        assert r(Constant("a"), Variable("x")) != r(Variable("x"), Constant("a"))


class TestAtomClassification:
    def test_base_fact_requires_constants_only(self):
        r = Predicate("R", 2)
        assert r(Constant("a"), Constant("b")).is_base_fact
        assert not r(Constant("a"), Null(1)).is_base_fact
        assert not r(Constant("a"), Variable("x")).is_base_fact

    def test_fact_allows_nulls(self):
        r = Predicate("R", 2)
        assert r(Constant("a"), Null(1)).is_fact
        assert not r(Constant("a"), Variable("x")).is_fact

    def test_function_free(self):
        f = FunctionSymbol("f", 1)
        r = Predicate("R", 1)
        assert r(Variable("x")).is_function_free
        assert not r(f(Variable("x"))).is_function_free

    def test_has_skolem(self):
        skolem = FunctionSymbol("f", 1, is_skolem=True)
        plain = FunctionSymbol("g", 1, is_skolem=False)
        r = Predicate("R", 1)
        assert r(skolem(Variable("x"))).has_skolem
        assert not r(plain(Variable("x"))).has_skolem

    def test_depth(self):
        f = FunctionSymbol("f", 1)
        r = Predicate("R", 1)
        assert r(Variable("x")).depth == 0
        assert r(f(Variable("x"))).depth == 1
        assert r(f(f(Variable("x")))).depth == 2


class TestAtomSymbolAccess:
    def test_variable_set(self):
        r = Predicate("R", 3)
        atom = r(Variable("x"), Constant("a"), Variable("y"))
        assert atom.variable_set() == {Variable("x"), Variable("y")}

    def test_atom_variables_order(self):
        r = Predicate("R", 2)
        s = Predicate("S", 1)
        atoms = [r(Variable("b"), Variable("a")), s(Variable("b"))]
        assert atom_variables(atoms) == (Variable("b"), Variable("a"))

    def test_atom_constants(self):
        r = Predicate("R", 2)
        atoms = [r(Constant("c"), Constant("d")), r(Constant("c"), Variable("x"))]
        assert atom_constants(atoms) == (Constant("c"), Constant("d"))

    def test_predicates_of(self):
        r = Predicate("R", 1)
        s = Predicate("S", 1)
        atoms = [r(Constant("a")), s(Constant("a")), r(Constant("b"))]
        assert predicates_of(atoms) == (r, s)

    def test_str_rendering(self):
        r = Predicate("R", 2)
        assert str(r(Constant("a"), Variable("x"))) == "R(a, ?x)"
