"""Unit tests for the depth-bounded Skolem chase."""

from repro.chase.skolem_chase import (
    SkolemChase,
    skolem_chase_base_facts,
    skolem_chase_entails,
)
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_program
from repro.logic.terms import Constant


class TestTerminatingPrograms:
    def test_datalog_only_saturates_completely(self):
        program = parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c). Edge(c, d).
            """
        )
        chase = SkolemChase(program.tgds)
        result = chase.run(program.instance)
        assert result.saturated
        reach = Predicate("Reach", 2)
        a, d = Constant("a"), Constant("d")
        assert reach(a, d) in result.facts

    def test_cim_example_completes_equipment(self):
        program = parse_program(
            """
            ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
            ACTerminal(?x) -> Terminal(?x).
            hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
            ACEquipment(sw1). ACEquipment(sw2).
            """
        )
        facts = skolem_chase_base_facts(program.instance, program.tgds)
        equipment = Predicate("Equipment", 1)
        assert equipment(Constant("sw1")) in facts
        assert equipment(Constant("sw2")) in facts

    def test_rounds_are_reported(self):
        program = parse_program("A(?x) -> B(?x). B(?x) -> C(?x). A(a).")
        result = SkolemChase(program.tgds).run(program.instance)
        assert result.rounds >= 2


class TestNonTerminatingPrograms:
    def test_depth_bound_cuts_off_infinite_chase(self):
        program = parse_program(
            """
            Person(?x) -> exists ?y. parent(?x, ?y), Person(?y).
            Person(adam).
            """
        )
        chase = SkolemChase(program.tgds, max_term_depth=3)
        result = chase.run(program.instance)
        assert not result.saturated
        # the base-fact projection is still the correct certain answer set
        assert result.base_facts() == {
            Predicate("Person", 1)(Constant("adam"))
        }

    def test_deeper_bound_derives_more_non_base_facts(self):
        program = parse_program(
            """
            Person(?x) -> exists ?y. parent(?x, ?y), Person(?y).
            Person(adam).
            """
        )
        shallow = SkolemChase(program.tgds, max_term_depth=1).run(program.instance)
        deep = SkolemChase(program.tgds, max_term_depth=3).run(program.instance)
        assert len(deep.facts) > len(shallow.facts)

    def test_fact_cap_stops_runaway_chase(self):
        program = parse_program(
            """
            Person(?x) -> exists ?y. parent(?x, ?y), Person(?y).
            Person(adam).
            """
        )
        chase = SkolemChase(program.tgds, max_term_depth=50, max_facts=30)
        result = chase.run(program.instance)
        assert not result.saturated
        assert len(result.facts) <= 62  # cap plus at most one round of overshoot


class TestSoundness:
    def test_under_approximates_exact_oracle(self, running):
        from repro.chase import certain_base_facts

        tgds, instance = running
        exact = certain_base_facts(instance, tgds)
        for depth in (0, 1, 2, 3):
            bounded = skolem_chase_base_facts(instance, tgds, max_term_depth=depth)
            assert bounded <= exact

    def test_entails_helper(self, running):
        tgds, instance = running
        h = Predicate("H", 1)
        assert skolem_chase_entails(instance, tgds, h(Constant("a")))
