"""Unit tests for the chase plan layer: Skolem head projection, the
semi-naive loop, and the ``chase_plan`` counters."""

from repro.chase.plans import (
    ChasePlanStats,
    SkolemRulePlan,
    compile_chase_plans,
    run_semi_naive_chase,
)
from repro.chase.skolem_chase import SkolemChase
from repro.datalog.plan import BindingBatch
from repro.datalog.store import TermTable
from repro.logic.atoms import Atom, Predicate
from repro.logic.parser import parse_program
from repro.logic.rules import Rule
from repro.logic.terms import Constant, FunctionSymbol, FunctionTerm, Variable


P = Predicate("P", 1)
R = Predicate("R", 2)
x, y = Variable("x"), Variable("y")
a, b = Constant("a"), Constant("b")
f = FunctionSymbol("f", 1, is_skolem=True)
g = FunctionSymbol("g", 2, is_skolem=True)


def _encoded_batch(table: TermTable, columns, size: int) -> BindingBatch:
    """Build a batch of term-ID columns from term-valued test columns."""
    return BindingBatch(
        {var: [table.encode(term) for term in values] for var, values in columns.items()},
        size,
    )


class TestHeadProjection:
    def test_plain_variable_and_constant_head(self):
        plan = SkolemRulePlan(Rule((R(x, y),), R(y, a)))
        table = TermTable()
        batch = _encoded_batch(table, {x: [a, b], y: [b, a]}, 2)
        assert list(plan.project_head(batch, table)) == [R(b, a), R(a, a)]

    def test_skolem_term_head(self):
        plan = SkolemRulePlan(Rule((P(x),), R(x, FunctionTerm(f, (x,)))))
        table = TermTable()
        batch = _encoded_batch(table, {x: [a, b]}, 2)
        assert list(plan.project_head(batch, table)) == [
            R(a, FunctionTerm(f, (a,))),
            R(b, FunctionTerm(f, (b,))),
        ]

    def test_nested_and_multi_argument_skolem_terms(self):
        head = R(FunctionTerm(f, (x,)), FunctionTerm(g, (x, y)))
        plan = SkolemRulePlan(Rule((R(x, y),), head))
        table = TermTable()
        batch = _encoded_batch(table, {x: [a], y: [b]}, 1)
        assert list(plan.project_head(batch, table)) == [
            R(FunctionTerm(f, (a,)), FunctionTerm(g, (a, b)))
        ]

    def test_ground_skolem_argument_is_a_constant_source(self):
        # a ground function term in the head needs no per-row construction
        ground = FunctionTerm(f, (a,))
        plan = SkolemRulePlan(Rule((P(x),), R(x, ground)))
        table = TermTable()
        batch = _encoded_batch(table, {x: [b]}, 1)
        assert list(plan.project_head(batch, table)) == [R(b, ground)]

    def test_empty_batch_projects_nothing(self):
        plan = SkolemRulePlan(Rule((P(x),), P(x)))
        assert list(plan.project_head(BindingBatch.empty(), TermTable())) == []


class TestCompileChasePlans:
    def test_function_free_bodies_compile(self):
        rules = (Rule((P(x), R(x, y)), P(y)),)
        plans = compile_chase_plans(rules)
        assert plans is not None and len(plans) == 1

    def test_non_ground_function_term_in_body_rejected(self):
        rules = (Rule((R(x, FunctionTerm(f, (x,))),), P(x)),)
        assert compile_chase_plans(rules) is None

    def test_variants_are_cached(self):
        plan = SkolemRulePlan(Rule((P(x), R(x, y)), P(y)))
        assert plan.variant(0) is plan.variant(0)
        assert plan.compiled_variant_count == 1
        plan.variant(None)
        plan.variant(1)
        assert plan.compiled_variant_count == 3


class TestSemiNaiveLoop:
    def test_transitive_closure(self):
        program = parse_program(
            """
            Edge(?x, ?y) -> Reach(?x, ?y).
            Reach(?x, ?y), Edge(?y, ?z) -> Reach(?x, ?z).
            Edge(a, b). Edge(b, c). Edge(c, d).
            """
        )
        chase = SkolemChase(program.tgds)
        plans = compile_chase_plans(chase.rules)
        stats = ChasePlanStats()
        facts, saturated, rounds = run_semi_naive_chase(
            plans, program.instance, max_term_depth=4, max_facts=1000, stats=stats
        )
        reach = Predicate("Reach", 2)
        assert reach(Constant("a"), Constant("d")) in facts
        assert saturated
        # the delta shrinks every round: longest new path per round
        assert stats.rounds == rounds > 1
        assert stats.delta_facts == len(facts) - len(program.instance)
        assert stats.max_delta >= 1

    def test_depth_bound_counts_pruned_facts(self):
        program = parse_program(
            """
            Person(?x) -> exists ?y. parent(?x, ?y), Person(?y).
            Person(adam).
            """
        )
        chase = SkolemChase(program.tgds, max_term_depth=2)
        result = chase.run(program.instance)
        assert not result.saturated
        assert result.plan_stats["depth_pruned"] >= 1
        assert result.plan_stats["plans_compiled"] >= 1

    def test_max_facts_cutoff_marks_unsaturated(self):
        program = parse_program(
            """
            Person(?x) -> exists ?y. parent(?x, ?y), Person(?y).
            Person(adam).
            """
        )
        chase = SkolemChase(program.tgds, max_term_depth=50, max_facts=25)
        result = chase.run(program.instance)
        assert not result.saturated
        assert len(result.facts) > 25  # cutoff fires only once the cap is hit


class TestSemiNaiveMatchesNaive:
    def test_cim_example(self, cim):
        tgds, instance = cim
        chase = SkolemChase(tgds)
        semi = chase.run(instance)
        naive = chase.run_naive_reference(instance)
        assert semi.facts == naive.facts
        assert semi.saturated == naive.saturated

    def test_running_example_at_all_depths(self, running):
        tgds, instance = running
        for depth in (0, 1, 2, 4):
            chase = SkolemChase(tgds, max_term_depth=depth)
            semi = chase.run(instance)
            naive = chase.run_naive_reference(instance)
            assert semi.facts == naive.facts, depth
            assert semi.saturated == naive.saturated, depth

    def test_seed_atom_in_one_delta_each(self):
        # every derived fact enters exactly one delta
        program = parse_program(
            """
            A(?x) -> B(?x). B(?x) -> C(?x). C(?x) -> D(?x).
            A(a). A(b).
            """
        )
        chase = SkolemChase(program.tgds)
        result = chase.run(program.instance)
        assert result.plan_stats["delta_facts"] == len(result.facts) - 2
