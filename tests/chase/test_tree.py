"""Unit tests for chase trees and chase/propagation steps."""

import pytest

from repro.logic.atoms import Atom, Predicate
from repro.logic.parser import parse_tgd
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Null, Variable
from repro.logic.tgd import program_constants
from repro.chase.tree import ChaseError, ChaseTree

A = Predicate("A", 2)
B = Predicate("B", 2)
C = Predicate("C", 2)
E = Predicate("E", 1)
a, b = Constant("a"), Constant("b")
x1, x2 = Variable("x1"), Variable("x2")


def null_factory_factory():
    counter = [0]

    def factory():
        counter[0] += 1
        return Null(counter[0])

    return factory


class TestInitialTree:
    def test_single_root_with_base_facts(self):
        tree = ChaseTree.initial([A(a, b)])
        assert tree.root_facts() == {A(a, b)}
        assert tree.recently_updated == tree.root_id
        assert len(tree.vertices()) == 1

    def test_depth_of_initial_tree(self):
        assert ChaseTree.initial([A(a, b)]).depth() == 0


class TestFullSteps:
    def test_full_step_adds_head_fact(self):
        tree = ChaseTree.initial([A(a, b)])
        tgd = parse_tgd("A(?x1, ?x2) -> E(?x1).")
        result = tree.apply_full_step(
            tree.root_id, tgd, Substitution({x1: a, x2: b})
        )
        assert E(a) in result.facts(result.root_id)
        assert result.recently_updated == result.root_id
        # the original tree is unchanged
        assert E(a) not in tree.root_facts()

    def test_full_step_requires_body_match(self):
        tree = ChaseTree.initial([A(a, b)])
        tgd = parse_tgd("B(?x1, ?x2) -> E(?x1).")
        with pytest.raises(ChaseError):
            tree.apply_full_step(tree.root_id, tgd, Substitution({x1: a, x2: b}))

    def test_full_step_rejects_non_full_tgd(self):
        tree = ChaseTree.initial([A(a, b)])
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y).")
        with pytest.raises(ChaseError):
            tree.apply_full_step(tree.root_id, tgd, Substitution({x1: a, x2: b}))

    def test_full_step_rejects_ungrounded_substitution(self):
        tree = ChaseTree.initial([A(a, b)])
        tgd = parse_tgd("A(?x1, ?x2) -> E(?x1).")
        with pytest.raises(ChaseError):
            tree.apply_full_step(tree.root_id, tgd, Substitution({x2: b, x1: Variable("z")}))


class TestNonFullSteps:
    def test_child_gets_head_and_guarded_parent_facts(self):
        tree = ChaseTree.initial([A(a, b), E(a)])
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y), C(?x1, ?y).")
        sigma_constants = program_constants([tgd])
        result, child = tree.apply_non_full_step(
            tree.root_id,
            tgd,
            Substitution({x1: a, x2: b}),
            sigma_constants,
            null_factory_factory(),
        )
        child_facts = result.facts(child)
        predicates = {fact.predicate.name for fact in child_facts}
        assert predicates == {"B", "C", "E"}  # E(a) is Σ-guarded by the head
        assert result.recently_updated == child
        assert result.parent(child) == tree.root_id

    def test_unguarded_parent_facts_are_not_copied(self):
        tree = ChaseTree.initial([A(a, b), E(b)])
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y).")
        result, child = tree.apply_non_full_step(
            tree.root_id,
            tgd,
            Substitution({x1: a, x2: b}),
            frozenset(),
            null_factory_factory(),
        )
        assert E(b) not in result.facts(child)

    def test_fresh_nulls_are_used(self):
        tree = ChaseTree.initial([A(a, b)])
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y).")
        result, child = tree.apply_non_full_step(
            tree.root_id,
            tgd,
            Substitution({x1: a, x2: b}),
            frozenset(),
            null_factory_factory(),
        )
        (fact,) = [f for f in result.facts(child) if f.predicate == B]
        assert isinstance(fact.args[1], Null)

    def test_rejects_full_tgd(self):
        tree = ChaseTree.initial([A(a, b)])
        tgd = parse_tgd("A(?x1, ?x2) -> E(?x1).")
        with pytest.raises(ChaseError):
            tree.apply_non_full_step(
                tree.root_id, tgd, Substitution({x1: a, x2: b}), frozenset(),
                null_factory_factory(),
            )


class TestPropagationSteps:
    def _tree_with_child(self):
        tree = ChaseTree.initial([A(a, b)])
        tgd = parse_tgd("A(?x1, ?x2) -> exists ?y. B(?x1, ?y).")
        result, child = tree.apply_non_full_step(
            tree.root_id, tgd, Substitution({x1: a, x2: b}), frozenset(),
            null_factory_factory(),
        )
        # derive E(a) in the child so there is something to propagate
        full = parse_tgd("B(?x1, ?x2) -> E(?x1).")
        (b_fact,) = [f for f in result.facts(child) if f.predicate == B]
        result = result.apply_full_step(
            child, full, Substitution({x1: a, x2: b_fact.args[1]})
        )
        return result, child

    def test_propagation_copies_guarded_fact_to_parent(self):
        tree, child = self._tree_with_child()
        result = tree.apply_propagation_step(child, tree.root_id, [E(a)], frozenset())
        assert E(a) in result.root_facts()
        assert result.recently_updated == tree.root_id

    def test_propagation_rejects_missing_fact(self):
        tree, child = self._tree_with_child()
        with pytest.raises(ChaseError):
            tree.apply_propagation_step(child, tree.root_id, [E(b)], frozenset())

    def test_propagation_rejects_unguarded_fact(self):
        tree, child = self._tree_with_child()
        (b_fact,) = [f for f in tree.facts(child) if f.predicate == B]
        with pytest.raises(ChaseError):
            tree.apply_propagation_step(child, tree.root_id, [b_fact], frozenset())

    def test_propagation_rejects_empty_set(self):
        tree, child = self._tree_with_child()
        with pytest.raises(ChaseError):
            tree.apply_propagation_step(child, tree.root_id, [], frozenset())


class TestTreeNavigation:
    def test_path_between_vertices(self):
        tree, child = TestPropagationSteps()._tree_with_child()
        path = tree.path_between(child, tree.root_id)
        assert path == (child, tree.root_id)
        assert tree.path_between(tree.root_id, tree.root_id) == (tree.root_id,)

    def test_children_listing(self):
        tree, child = TestPropagationSteps()._tree_with_child()
        assert tree.children(tree.root_id) == (child,)

    def test_all_facts_and_nulls(self):
        tree, child = TestPropagationSteps()._tree_with_child()
        assert A(a, b) in tree.all_facts()
        assert len(tree.all_nulls()) == 1

    def test_pretty_rendering_mentions_all_vertices(self):
        tree, child = TestPropagationSteps()._tree_with_child()
        rendering = tree.pretty()
        assert f"v{tree.root_id}" in rendering
        assert f"v{child}" in rendering
