"""Tests for chase sequences, the one-pass property, and loop extraction.

The tests replay the tree-like chase sequence of Figure 1 (Example 4.3) and
check that the loop decomposition matches Example 4.5.
"""

import pytest

from repro.chase.sequence import ChaseSequence, ChaseStepRecord
from repro.chase.tree import ChaseTree
from repro.logic.atoms import Atom, Predicate
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Null, Variable
from repro.logic.tgd import head_normalize, program_constants
from repro.workloads.families import running_example

A = Predicate("A", 2)
B = Predicate("B", 2)
C = Predicate("C", 2)
D = Predicate("D", 2)
E = Predicate("E", 1)
F = Predicate("F", 2)
G = Predicate("G", 1)
H = Predicate("H", 1)
a, b = Constant("a"), Constant("b")
x1, x2 = Variable("x1"), Variable("x2")


@pytest.fixture
def figure1_sequence():
    """Replay the chase sequence T0 ... T4 of Figure 1 (the first loop)."""
    tgds, instance = running_example()
    tgds = head_normalize(tgds)
    sigma_constants = program_constants(tgds)
    nulls = iter([Null(1), Null(2), Null(3)])

    tgd8 = next(t for t in tgds if t.is_non_full and t.head[0].predicate == B)
    tgd9 = next(t for t in tgds if t.is_full and t.head[0].predicate == D)
    tgd10 = next(t for t in tgds if t.is_full and t.head[0].predicate == E)

    sequence = ChaseSequence(ChaseTree.initial(instance))
    tree = sequence.trees[0]
    root = tree.root_id

    # T1: chase step with (8) at the root
    tree, child = tree.apply_non_full_step(
        root, tgd8, Substitution({x1: a, x2: b}), sigma_constants, lambda: next(nulls)
    )
    sequence.record(
        tree,
        ChaseStepRecord(
            kind="non_full", vertex_id=root, tgd=tgd8, created_vertex_id=child
        ),
    )
    null1 = Null(1)

    # T2: chase step with (9) in the child
    tree = tree.apply_full_step(child, tgd9, Substitution({x1: a, x2: null1}))
    sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd9))

    # T3: chase step with (10) in the child
    tree = tree.apply_full_step(child, tgd10, Substitution({x1: a, x2: null1}))
    sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd10))

    # T4: propagate E(a) back to the root
    tree = tree.apply_propagation_step(child, root, [E(a)], sigma_constants)
    sequence.record(
        tree,
        ChaseStepRecord(
            kind="propagation",
            vertex_id=child,
            propagated=(E(a),),
            target_vertex_id=root,
        ),
    )
    return sequence, sigma_constants, root, child


class TestSequenceBasics:
    def test_length_and_final_tree(self, figure1_sequence):
        sequence, _, root, _ = figure1_sequence
        assert len(sequence) == 5  # T0 ... T4
        assert E(a) in sequence.final_tree.facts(root)

    def test_proves(self, figure1_sequence):
        sequence, _, _, _ = figure1_sequence
        assert sequence.proves(E(a))
        assert sequence.proves_at_root(E(a))
        assert not sequence.proves(H(a))


class TestOnePassProperty:
    def test_figure1_prefix_is_one_pass(self, figure1_sequence):
        sequence, sigma_constants, _, _ = figure1_sequence
        assert sequence.is_one_pass(sigma_constants)

    def test_step_at_non_focused_vertex_violates_one_pass(self, figure1_sequence):
        sequence, sigma_constants, root, child = figure1_sequence
        tgds, _ = running_example()
        tgds = head_normalize(tgds)
        tgd9 = next(t for t in tgds if t.is_full and t.head[0].predicate == D)
        # after the propagation the child is no longer the recently updated
        # vertex, so another step there breaks Definition 4.1
        tree = sequence.final_tree.apply_full_step(
            child, tgd9, Substitution({x1: a, x2: Null(1)})
        )
        sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd9))
        assert not sequence.is_one_pass(sigma_constants)

    def test_chase_step_while_propagation_applicable_violates_one_pass(self):
        """A chase step is only allowed when no propagation to the parent applies."""
        tgds, instance = running_example()
        tgds = head_normalize(tgds)
        sigma_constants = program_constants(tgds)
        nulls = iter([Null(1)])
        tgd8 = next(t for t in tgds if t.is_non_full and t.head[0].predicate == B)
        tgd9 = next(t for t in tgds if t.is_full and t.head[0].predicate == D)
        tgd10 = next(t for t in tgds if t.is_full and t.head[0].predicate == E)

        sequence = ChaseSequence(ChaseTree.initial(instance))
        tree = sequence.trees[0]
        root = tree.root_id
        tree, child = tree.apply_non_full_step(
            root, tgd8, Substitution({x1: a, x2: b}), sigma_constants, lambda: next(nulls)
        )
        sequence.record(
            tree, ChaseStepRecord(kind="non_full", vertex_id=root, tgd=tgd8,
                                  created_vertex_id=child)
        )
        tree = tree.apply_full_step(child, tgd9, Substitution({x1: a, x2: Null(1)}))
        sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd9))
        tree = tree.apply_full_step(child, tgd10, Substitution({x1: a, x2: Null(1)}))
        sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd10))
        # E(a) is now derivable in the child and could be propagated; applying
        # yet another chase step in the child violates the one-pass condition
        tree = tree.apply_full_step(child, tgd9, Substitution({x1: a, x2: Null(1)}))
        sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd9))
        assert not sequence.is_one_pass(sigma_constants)


class TestLoops:
    def test_loop_extraction_matches_example_4_5(self, figure1_sequence):
        sequence, _, root, _ = figure1_sequence
        loops = sequence.loops()
        assert len(loops) == 1
        loop = loops[0]
        assert loop.vertex_id == root
        assert loop.output_fact == E(a)
        assert loop.start_index == 0
        assert loop.end_index == 4
        assert loop.length == 4

    def test_loop_input_facts(self, figure1_sequence):
        sequence, _, _, _ = figure1_sequence
        (loop,) = sequence.loops()
        assert sequence.loop_input_facts(loop) == {A(a, b)}

    def test_loops_at_root(self, figure1_sequence):
        sequence, _, _, _ = figure1_sequence
        assert len(sequence.loops_at_root()) == 1
