"""Unit tests for the oracle convenience wrappers."""

from repro.chase.oracle import (
    bounded_certain_base_facts,
    certain_base_facts,
    entails,
    oracle_agrees,
)
from repro.logic.atoms import Predicate
from repro.logic.terms import Constant


class TestOracleWrappers:
    def test_certain_base_facts(self, running):
        tgds, instance = running
        facts = certain_base_facts(instance, tgds)
        assert Predicate("H", 1)(Constant("a")) in facts

    def test_entails(self, cim):
        tgds, instance = cim
        assert entails(instance, tgds, Predicate("Equipment", 1)(Constant("sw2")))
        assert not entails(instance, tgds, Predicate("Equipment", 1)(Constant("trm1")))

    def test_bounded_is_subset_of_exact(self, running):
        tgds, instance = running
        assert bounded_certain_base_facts(instance, tgds, 2) <= certain_base_facts(
            instance, tgds
        )

    def test_oracle_agrees(self, running):
        tgds, instance = running
        exact = certain_base_facts(instance, tgds)
        assert oracle_agrees(instance, tgds, exact)
        assert not oracle_agrees(instance, tgds, set())

    def test_oracle_agrees_ignores_non_base_facts(self, running):
        from repro.logic.terms import Null

        tgds, instance = running
        exact = set(certain_base_facts(instance, tgds))
        exact_with_noise = exact | {Predicate("E", 1)(Null(9))}
        assert oracle_agrees(instance, tgds, exact_with_noise)
