"""Unit tests for the type-closure decision procedure (the exact oracle)."""

import pytest

from repro.chase.guarded_engine import GuardedChaseReasoner
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_program, parse_tgds
from repro.logic.terms import Constant


class TestBasicEntailment:
    def test_running_example_entails_h(self, running):
        tgds, instance = running
        reasoner = GuardedChaseReasoner(tgds)
        h = Predicate("H", 1)
        assert reasoner.entails(instance, h(Constant("a")))

    def test_running_example_full_answer_set(self, running):
        tgds, instance = running
        reasoner = GuardedChaseReasoner(tgds)
        names = {fact.predicate.name for fact in reasoner.entailed_base_facts(instance)}
        assert names == {"A", "E", "G", "H"}

    def test_cim_example_completes_both_switches(self, cim):
        tgds, instance = cim
        reasoner = GuardedChaseReasoner(tgds)
        equipment = Predicate("Equipment", 1)
        facts = reasoner.entailed_base_facts(instance)
        assert equipment(Constant("sw1")) in facts
        assert equipment(Constant("sw2")) in facts

    def test_non_entailed_fact(self, running):
        tgds, instance = running
        reasoner = GuardedChaseReasoner(tgds)
        h = Predicate("H", 1)
        assert not reasoner.entails(instance, h(Constant("b")))

    def test_entails_rejects_non_base_facts(self, running):
        tgds, instance = running
        reasoner = GuardedChaseReasoner(tgds)
        from repro.logic.terms import Null

        with pytest.raises(ValueError):
            reasoner.entails(instance, Predicate("E", 1)(Null(1)))


class TestInfiniteChaseCases:
    def test_terminates_on_infinite_chase_program(self):
        """The classic Person/parent cycle has an infinite chase but a tiny closure."""
        program = parse_program(
            """
            Person(?x) -> exists ?y. parent(?x, ?y), Person(?y).
            parent(?x, ?y), Person(?y) -> Ancestor(?x).
            Person(adam).
            """
        )
        reasoner = GuardedChaseReasoner(program.tgds)
        facts = reasoner.entailed_base_facts(program.instance)
        assert Predicate("Ancestor", 1)(Constant("adam")) in facts

    def test_mutual_recursion_between_existentials(self):
        program = parse_program(
            """
            A(?x) -> exists ?y. r(?x, ?y), B(?y).
            B(?x) -> exists ?y. s(?x, ?y), A(?y).
            r(?x, ?y), B(?y) -> Good(?x).
            s(?x, ?y), A(?y) -> Fine(?x).
            A(a).
            """
        )
        reasoner = GuardedChaseReasoner(program.tgds)
        facts = reasoner.entailed_base_facts(program.instance)
        assert Predicate("Good", 1)(Constant("a")) in facts
        # Fine(a) is not entailed: a is an A, not a B
        assert Predicate("Fine", 1)(Constant("a")) not in facts

    def test_constants_in_tgds_propagate_out_of_subtrees(self):
        """Facts over constants of Σ escape the child vertex that derived them."""
        program = parse_program(
            """
            A(?x) -> exists ?y. r(?x, ?y).
            r(?x, ?y) -> Marked(c).
            A(a).
            """
        )
        reasoner = GuardedChaseReasoner(program.tgds)
        facts = reasoner.entailed_base_facts(program.instance)
        assert Predicate("Marked", 1)(Constant("c")) in facts


class TestValidation:
    def test_unguarded_input_rejected(self):
        tgds = parse_tgds("A(?x), B(?y) -> C(?x, ?y).")
        with pytest.raises(ValueError):
            GuardedChaseReasoner(tgds)

    def test_type_limit_guard(self):
        tgds = parse_tgds("A(?x) -> exists ?y. r(?x, ?y), A(?y).")
        reasoner = GuardedChaseReasoner(tgds, max_types=0)
        program = parse_program("A(a).")
        with pytest.raises(RuntimeError):
            reasoner.saturate(program.instance)

    def test_agreement_with_skolem_chase_on_terminating_inputs(self):
        from repro.chase.skolem_chase import skolem_chase_base_facts

        program = parse_program(
            """
            A(?x) -> exists ?y. r(?x, ?y), B(?y).
            B(?x) -> C(?x).
            r(?x, ?y), C(?y) -> D(?x).
            A(a). A(b). r(a, b).
            """
        )
        reasoner = GuardedChaseReasoner(program.tgds)
        exact = reasoner.entailed_base_facts(program.instance)
        bounded = skolem_chase_base_facts(program.instance, program.tgds, max_term_depth=4)
        assert exact == bounded


class TestDeltaPivotedTriggerRefires:
    """The stored-trigger re-fires must match the full-closure reference."""

    def test_refires_grow_child_types_incrementally(self):
        # B(?x) facts about the parent arrive over several worklist rounds,
        # so the stored trigger for the existential must re-fire — each time
        # growing the inheritable set by the new delta only
        program = parse_program(
            """
            A(?x) -> exists ?y. r(?x, ?y), B(?y).
            r(?x, ?y), B(?y) -> C(?x).
            C(?x) -> B(?x).
            B(?x) -> D(?x).
            A(a). r(a, b). B(b).
            """
        )
        from repro.chase.guarded_engine import ReferenceGuardedReasoner

        worklist = GuardedChaseReasoner(program.tgds).entailed_base_facts(
            program.instance
        )
        reference = ReferenceGuardedReasoner(program.tgds).entailed_base_facts(
            program.instance
        )
        assert worklist == reference
        D = Predicate("D", 1)
        assert D(Constant("a")) in worklist

    def test_ontology_suite_equivalence_with_reference(self):
        from repro.chase.guarded_engine import ReferenceGuardedReasoner
        from repro.workloads.instances import generate_instance
        from repro.workloads.ontology_suite import generate_suite

        suite = generate_suite(count=3, seed=13, min_axioms=8, max_axioms=16)
        for item in suite:
            instance = generate_instance(
                item.tgds,
                fact_count=30,
                constant_count=10,
                seed=int(item.identifier),
            )
            worklist = GuardedChaseReasoner(
                item.tgds, max_types=500_000
            ).entailed_base_facts(instance)
            reference = ReferenceGuardedReasoner(
                item.tgds, max_types=500_000
            ).entailed_base_facts(instance)
            assert worklist == reference, item.identifier
